//! The live introspection plane: a dependency-free HTTP/1.1 server
//! over [`std::net::TcpListener`] exposing the process's telemetry
//! while it runs.
//!
//! This is deliberately *not* a web framework — one background thread,
//! blocking accepts, sequential request handling, `Connection: close`
//! on every response. An introspection plane serves a handful of
//! curl/Prometheus scrapes per minute; the skeleton is what the
//! `qbeep-serve` daemon (ROADMAP item 1) will grow from.
//!
//! # Endpoints
//!
//! | Path       | Body                                                     |
//! |------------|----------------------------------------------------------|
//! | `/healthz` | `ok` (text/plain)                                        |
//! | `/metrics` | Prometheus text 0.0.4 exposition of the live registry    |
//! | `/profile` | [`ProfileReport`] JSON (stages / workers / RSS)          |
//! | `/flights` | Pending (undrained) flight-recorder incidents, JSON      |
//!
//! `/metrics` stamps the memory gauges (`qbeep_peak_rss_bytes`,
//! `qbeep_vm_rss_bytes`) into the registry before snapshotting, so a
//! live scrape carries the same families as the end-of-run artifact;
//! everything except those env-dependent families is byte-identical
//! between a mid-run scrape and the exit exposition.
//!
//! # Lifecycle
//!
//! [`IntrospectServer::start`] binds and spawns the accept thread;
//! `port 0` binds an ephemeral port, reported by
//! [`IntrospectServer::local_addr`]. Shutdown (explicit or on drop)
//! flips a flag and self-connects to unblock the blocking `accept`,
//! then joins the thread — no request is torn down mid-response.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::flight::FlightRecorder;
use crate::metrics::{LabelSet, MetricsRegistry};
use crate::profile::{memory_stats, ProfileReport, RssHandle};
use crate::recorder::Recorder;

/// Environment variable the CLI and bench consult for a default
/// introspection bind address (e.g. `127.0.0.1:9095`).
pub const INTROSPECT_ENV: &str = "QBEEP_INTROSPECT";

/// Largest request head (request line + headers) the server reads
/// before giving up on a connection.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long one connection may dribble its request before the server
/// moves on.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Stamps the process memory gauges into `registry`: peak RSS
/// (`VmHWM`) and current RSS (`VmRSS`) from the shared
/// [`memory_stats`] parser. No-op on platforms without procfs or on a
/// disabled registry, so expositions degrade by omitting the families
/// rather than erroring.
pub fn stamp_memory_gauges(registry: &MetricsRegistry) {
    if !registry.is_enabled() {
        return;
    }
    let Some(stats) = memory_stats() else {
        return;
    };
    if let Some(bytes) = stats.vm_hwm_bytes {
        registry.describe(
            "qbeep_peak_rss_bytes",
            "Peak resident set size of the process in bytes",
        );
        registry.set_gauge("qbeep_peak_rss_bytes", &LabelSet::empty(), bytes as f64);
    }
    if let Some(bytes) = stats.vm_rss_bytes {
        registry.describe(
            "qbeep_vm_rss_bytes",
            "Current resident set size of the process in bytes",
        );
        registry.set_gauge("qbeep_vm_rss_bytes", &LabelSet::empty(), bytes as f64);
    }
}

/// The live state an [`IntrospectServer`] serves. Every handle is a
/// cheap clone sharing state with the running engine; disabled handles
/// degrade their endpoint rather than failing the server.
#[derive(Debug, Clone, Default)]
pub struct IntrospectSources {
    /// Registry behind `/metrics`.
    pub metrics: MetricsRegistry,
    /// Flight recorder behind `/flights`.
    pub flight: FlightRecorder,
    /// Recorder whose span stats feed `/profile`.
    pub recorder: Recorder,
    /// RSS-sampler trajectory for `/profile`, when one is running.
    pub rss: Option<RssHandle>,
}

/// A running introspection server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop and joins the
/// serving thread.
#[derive(Debug)]
pub struct IntrospectServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl IntrospectServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `sources` on a background thread.
    pub fn start(addr: &str, sources: IntrospectSources) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("qbeep-introspect".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One slow or broken client must not take the
                        // plane down; errors drop the connection only.
                        let _ = handle_connection(stream, &sources, started);
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the blocking accept with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request head, routes it, writes one response.
fn handle_connection(
    mut stream: TcpStream,
    sources: &IntrospectSources,
    started: Instant,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_REQUEST_BYTES {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Route on the path only; a query string is ignored, not an error.
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            b"method not allowed\n",
        );
    }
    match path {
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain; charset=utf-8", b"ok\n"),
        "/metrics" => {
            let body = if sources.metrics.is_enabled() {
                stamp_memory_gauges(&sources.metrics);
                sources.metrics.snapshot().to_prometheus()
            } else {
                "# metrics registry disabled\n".to_string()
            };
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
            )
        }
        "/profile" => {
            let report = ProfileReport::collect(
                started.elapsed(),
                &sources.recorder.report().spans,
                sources.rss.as_ref().map(RssHandle::stats),
            );
            let body = serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string());
            respond(&mut stream, 200, "OK", "application/json", body.as_bytes())
        }
        "/flights" => {
            let incidents = sources.flight.peek_incidents();
            let body = serde_json::json!({
                "pending": incidents.len(),
                "suppressed": sources.flight.incidents_suppressed(),
                "incidents": incidents,
            });
            let body = serde_json::to_string_pretty(&body).unwrap_or_else(|_| "{}".to_string());
            respond(&mut stream, 200, "OK", "application/json", body.as_bytes())
        }
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            b"not found\n",
        ),
    }
}

/// Writes one complete `Connection: close` HTTP/1.1 response.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventLevel;

    /// Minimal test-side HTTP client: one GET, returns (status, body).
    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: qbeep\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn live_sources() -> IntrospectSources {
        let metrics = MetricsRegistry::new();
        metrics.describe("qbeep_test_total", "Test counter");
        metrics.inc("qbeep_test_total", &LabelSet::empty(), 3);
        let flight = FlightRecorder::new();
        let recorder = Recorder::new()
            .with_flight(flight.clone())
            .with_metrics(metrics.clone());
        IntrospectSources {
            metrics,
            flight,
            recorder,
            rss: None,
        }
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = IntrospectServer::start("127.0.0.1:0", live_sources()).unwrap();
        let addr = server.local_addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
    }

    #[test]
    fn metrics_scrape_matches_registry_snapshot() {
        let sources = live_sources();
        let registry = sources.metrics.clone();
        let server = IntrospectServer::start("127.0.0.1:0", sources).unwrap();
        let (status, live) = get(server.local_addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(
            live.contains("qbeep_test_total 3"),
            "exposition missing counter:\n{live}"
        );
        // Modulo the env-dependent memory gauges, the live scrape is
        // byte-identical to a direct snapshot exposition.
        let env_dependent = ["qbeep_peak_rss_bytes", "qbeep_vm_rss_bytes"];
        let direct = registry
            .snapshot()
            .without_families(&env_dependent)
            .to_prometheus();
        let live_snap: crate::metrics::MetricsSnapshot = {
            stamp_memory_gauges(&registry);
            registry.snapshot()
        };
        assert_eq!(
            live_snap.without_families(&env_dependent).to_prometheus(),
            direct
        );
        // And the served bytes contain the filtered exposition verbatim.
        for line in direct.lines() {
            assert!(live.contains(line), "live scrape missing {line:?}");
        }
    }

    #[test]
    fn profile_endpoint_returns_parseable_report() {
        let sources = live_sources();
        {
            let _span = sources.recorder.span("probe_stage");
            std::thread::sleep(Duration::from_millis(2));
        }
        let server = IntrospectServer::start("127.0.0.1:0", sources).unwrap();
        let (status, body) = get(server.local_addr(), "/profile");
        assert_eq!(status, 200);
        let report: ProfileReport = serde_json::from_str(&body).unwrap();
        assert!(report.total_wall_ms >= 0.0);
        assert!(
            report.stages.iter().any(|s| s.name == "probe_stage"),
            "{body}"
        );
    }

    #[test]
    fn flights_endpoint_peeks_without_draining() {
        let sources = live_sources();
        let flight = sources.flight.clone();
        flight.note(EventLevel::Error, "job.panicked", &[]);
        flight.incident("job.panicked", &[("job", "3".to_string())]);
        let server = IntrospectServer::start("127.0.0.1:0", sources).unwrap();
        let (status, body) = get(server.local_addr(), "/flights");
        assert_eq!(status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["pending"], 1);
        assert_eq!(parsed["incidents"][0]["reason"], "job.panicked");
        // Peeking must not steal the end-of-run flush.
        assert_eq!(flight.incident_count(), 1);
        assert_eq!(flight.drain_incidents().len(), 1);
    }

    #[test]
    fn non_get_is_rejected_and_shutdown_is_idempotent() {
        let mut server = IntrospectServer::start("127.0.0.1:0", live_sources()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        server.shutdown();
        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
