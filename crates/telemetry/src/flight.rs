//! The flight recorder: always-on, bounded-overhead crash forensics.
//!
//! The session engine already guarantees that when one quarantined job
//! panics, the survivors are bit-identical. This module upgrades that
//! to "and here is exactly what the casualty was doing": a
//! [`FlightRecorder`] keeps a small fixed-size ring of the most recent
//! [`Event`]s (explicit notes and span closures). When something goes
//! wrong — a job panics, the watchdog degrades, a fault fires — the
//! caller triggers [`FlightRecorder::incident`], which snapshots the
//! ring into an immutable [`FlightDump`] together with the
//! [`ProvenanceManifest`] of the run. Dumps accumulate (bounded) until
//! drained and written to `*.flight.json` files.
//!
//! Design constraints, in order:
//!
//! 1. **Bounded overhead** — the ring holds [`DEFAULT_FLIGHT_CAPACITY`]
//!    events and at most [`MAX_INCIDENTS`] dumps; a pathological run
//!    cannot OOM on forensics. A disabled recorder is a single branch.
//! 2. **No I/O at incident time** — an incident snapshots memory only;
//!    file writes happen later, at session level, outside any hot or
//!    panicking path.
//! 3. **Self-describing dumps** — a dump carries its reason, its
//!    trigger fields, the provenance digests and the event tail, so
//!    `qbeep-cli inspect` can render it with no other context.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::events::{Event, EventLevel};
use crate::manifest::ProvenanceManifest;
use crate::recorder::current_thread_id;

/// Default flight-ring capacity: enough recent history to see what a
/// job was doing, small enough to snapshot in microseconds.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Maximum number of incident dumps retained before new incidents only
/// bump a counter. A run that trips more than this is systematically
/// broken; the first sixteen dumps tell the story.
pub const MAX_INCIDENTS: usize = 16;

#[derive(Debug)]
struct FlightInner {
    epoch: Instant,
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    incidents: Vec<FlightDump>,
    incidents_suppressed: u64,
    manifest: Option<ProvenanceManifest>,
}

impl FlightInner {
    fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

/// A cheap, cloneable handle to a shared flight ring. Clones share
/// state; [`FlightRecorder::disabled`] (also the default) makes every
/// operation a single branch.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<FlightInner>>>,
}

impl FlightRecorder {
    /// Creates an enabled flight recorder with the default ring
    /// capacity ([`DEFAULT_FLIGHT_CAPACITY`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Creates an enabled flight recorder holding at most `capacity`
    /// recent events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(FlightInner {
                epoch: Instant::now(),
                ring: VecDeque::new(),
                capacity,
                dropped: 0,
                incidents: Vec::new(),
                incidents_suppressed: 0,
                manifest: None,
            }))),
        }
    }

    /// Creates a no-op flight recorder.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this recorder actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock<'a>(inner: &'a Arc<Mutex<FlightInner>>) -> MutexGuard<'a, FlightInner> {
        // Forensics must survive poisoning — that is the whole point.
        inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attaches the provenance manifest every subsequent dump carries.
    pub fn set_manifest(&self, manifest: ProvenanceManifest) {
        if let Some(inner) = &self.inner {
            Self::lock(inner).manifest = Some(manifest);
        }
    }

    /// Records one instant event into the ring.
    pub fn note(&self, level: EventLevel, name: &str, fields: &[(&str, String)]) {
        if let Some(inner) = &self.inner {
            let thread = current_thread_id();
            let mut guard = Self::lock(inner);
            let start_us = guard.epoch.elapsed().as_secs_f64() * 1e6;
            let event = Event {
                start_us,
                dur_us: None,
                name: name.to_string(),
                level,
                thread,
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            };
            guard.push(event);
        }
    }

    /// Records one closed span (path + duration) into the ring.
    pub fn note_span(&self, path: &str, dur_us: f64) {
        if let Some(inner) = &self.inner {
            let thread = current_thread_id();
            let mut guard = Self::lock(inner);
            let end_us = guard.epoch.elapsed().as_secs_f64() * 1e6;
            let event = Event {
                start_us: (end_us - dur_us).max(0.0),
                dur_us: Some(dur_us),
                name: path.to_string(),
                level: EventLevel::Info,
                thread,
                fields: Vec::new(),
            };
            guard.push(event);
        }
    }

    /// Snapshots the ring into a [`FlightDump`] tagged with `reason`
    /// and `fields`. The dump is retained (bounded by
    /// [`MAX_INCIDENTS`]) until [`drain_incidents`](Self::drain_incidents).
    /// No file I/O happens here — incident capture is memory-only, so
    /// it is safe to call from panic-cleanup paths.
    pub fn incident(&self, reason: &str, fields: &[(&str, String)]) {
        if let Some(inner) = &self.inner {
            let mut guard = Self::lock(inner);
            if guard.incidents.len() >= MAX_INCIDENTS {
                guard.incidents_suppressed += 1;
                return;
            }
            let captured_at_us = guard.epoch.elapsed().as_secs_f64() * 1e6;
            let dump = FlightDump {
                reason: reason.to_string(),
                captured_at_us,
                thread: current_thread_id(),
                dropped: guard.dropped,
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
                events: guard.ring.iter().cloned().collect(),
                manifest: guard.manifest.clone(),
            };
            guard.incidents.push(dump);
        }
    }

    /// Takes every captured incident dump out of the recorder (for
    /// writing to `*.flight.json` files). Later incidents refill it.
    #[must_use]
    pub fn drain_incidents(&self) -> Vec<FlightDump> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        std::mem::take(&mut Self::lock(inner).incidents)
    }

    /// Copies every captured-but-undrained incident dump without
    /// taking it. This is the live-introspection view (`GET /flights`):
    /// scraping pending incidents must not steal them from the
    /// end-of-run `*.flight.json` flush.
    #[must_use]
    pub fn peek_incidents(&self) -> Vec<FlightDump> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        Self::lock(inner).incidents.clone()
    }

    /// Number of incidents captured and still undrained.
    #[must_use]
    pub fn incident_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| Self::lock(inner).incidents.len())
    }

    /// How many incidents were suppressed after [`MAX_INCIDENTS`].
    #[must_use]
    pub fn incidents_suppressed(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| Self::lock(inner).incidents_suppressed)
    }
}

/// An immutable snapshot of the flight ring at incident time: the
/// black-box recording written to a `*.flight.json` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was captured (`job.panicked`,
    /// `watchdog.degraded`, `fault.injected`, …).
    pub reason: String,
    /// Microsecond offset (from the flight recorder's creation) at
    /// which the incident was captured.
    pub captured_at_us: f64,
    /// Recorder-assigned id of the thread that captured the incident.
    pub thread: u64,
    /// How many ring events were evicted before this snapshot (the
    /// history that is *not* in `events`).
    pub dropped: u64,
    /// Trigger-specific `key=value` context (job index, panic message,
    /// degradation reason, fault site…).
    pub fields: Vec<(String, String)>,
    /// The ring contents at capture time, oldest first.
    pub events: Vec<Event>,
    /// Provenance of the run, when the owner attached one.
    #[serde(default)]
    pub manifest: Option<ProvenanceManifest>,
}

impl FlightDump {
    /// Serializes the dump as pretty-printed JSON (the `*.flight.json`
    /// file format).
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error (practically
    /// unreachable for this self-contained value type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a dump back from its JSON form.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error when `text` is not a
    /// flight dump.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders the dump as a human-readable incident report showing at
    /// most the last `last_n` events (0 means all).
    #[must_use]
    pub fn render_report(&self, last_n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("incident: {}\n", self.reason));
        out.push_str(&format!(
            "captured: {:.1} ms after recorder start, on thread {}\n",
            self.captured_at_us / 1e3,
            self.thread
        ));
        for (k, v) in &self.fields {
            out.push_str(&format!("  {k}: {v}\n"));
        }
        if let Some(manifest) = &self.manifest {
            out.push_str("provenance:\n");
            for (k, v) in manifest.render_lines() {
                out.push_str(&format!("  {k}: {v}\n"));
            }
        }
        let shown = if last_n == 0 || last_n >= self.events.len() {
            self.events.len()
        } else {
            last_n
        };
        let skipped = self.events.len() - shown + self.dropped as usize;
        out.push_str(&format!(
            "events (last {shown} of {} recorded, {skipped} older not shown):\n",
            self.events.len() + self.dropped as usize
        ));
        for event in &self.events[self.events.len() - shown..] {
            let when = format!("{:>12.1}us", event.start_us);
            let dur = match event.dur_us {
                Some(d) => format!(" [{d:.1}us]"),
                None => String::new(),
            };
            let mut fields = String::new();
            for (k, v) in &event.fields {
                fields.push_str(&format!(" {k}={v}"));
            }
            out.push_str(&format!(
                "  {when} t{} {:<5} {}{dur}{fields}\n",
                event.thread,
                event.level.as_str(),
                event.name
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let f = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            f.note(EventLevel::Info, &format!("e{i}"), &[]);
        }
        f.incident("test", &[]);
        let dumps = f.drain_incidents();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.dropped, 6);
        let names: Vec<&str> = dump.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn incident_snapshots_ring_and_manifest() {
        let f = FlightRecorder::new();
        f.set_manifest(ProvenanceManifest::new("0.1.0", "cafebabecafebabe"));
        f.note(EventLevel::Warn, "before", &[("k", "v".to_string())]);
        f.incident("job.panicked", &[("job", "3".to_string())]);
        f.note(EventLevel::Info, "after", &[]);
        let dumps = f.drain_incidents();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.reason, "job.panicked");
        assert_eq!(dump.fields, vec![("job".to_string(), "3".to_string())]);
        // The snapshot is frozen at incident time: `after` is absent.
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].name, "before");
        assert_eq!(
            dump.manifest.as_ref().unwrap().config_digest,
            "cafebabecafebabe"
        );
        // Drained means gone.
        assert!(f.drain_incidents().is_empty());
    }

    #[test]
    fn incidents_are_bounded() {
        let f = FlightRecorder::new();
        for i in 0..(MAX_INCIDENTS + 5) {
            f.incident(&format!("i{i}"), &[]);
        }
        assert_eq!(f.incident_count(), MAX_INCIDENTS);
        assert_eq!(f.incidents_suppressed(), 5);
        assert_eq!(f.drain_incidents().len(), MAX_INCIDENTS);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let f = FlightRecorder::new();
        f.note_span("mitigate/graph_build", 1234.5);
        f.incident("watchdog.degraded", &[("reason", "max_iters".to_string())]);
        let dump = f.drain_incidents().remove(0);
        let json = dump.to_json().unwrap();
        let back = FlightDump::from_json(&json).unwrap();
        assert_eq!(dump, back);
        assert_eq!(back.events[0].dur_us, Some(1234.5));
    }

    #[test]
    fn render_report_shows_tail_and_provenance() {
        let f = FlightRecorder::new();
        f.set_manifest(ProvenanceManifest::new("0.1.0", "cafebabecafebabe").with_seed(7));
        for i in 0..5 {
            f.note(EventLevel::Info, &format!("step{i}"), &[]);
        }
        f.incident("job.panicked", &[("panic_message", "boom".to_string())]);
        let dump = f.drain_incidents().remove(0);
        let report = dump.render_report(2);
        assert!(report.contains("incident: job.panicked"), "{report}");
        assert!(report.contains("panic_message: boom"), "{report}");
        assert!(
            report.contains("config_digest: cafebabecafebabe"),
            "{report}"
        );
        assert!(report.contains("seed: 7"), "{report}");
        assert!(report.contains("step4"), "{report}");
        assert!(!report.contains("step1"), "{report}");
        // last_n = 0 means everything.
        assert!(dump.render_report(0).contains("step0"));
    }

    #[test]
    fn disabled_flight_recorder_is_a_noop() {
        let f = FlightRecorder::disabled();
        assert!(!f.is_enabled());
        f.note(EventLevel::Error, "never", &[]);
        f.note_span("never", 1.0);
        f.incident("never", &[]);
        f.set_manifest(ProvenanceManifest::new("0", "0"));
        assert_eq!(f.incident_count(), 0);
        assert!(f.drain_incidents().is_empty());
        assert!(!FlightRecorder::default().is_enabled());
    }

    #[test]
    fn clones_share_the_ring() {
        let f = FlightRecorder::new();
        let clone = f.clone();
        clone.note(EventLevel::Info, "shared", &[]);
        f.incident("check", &[]);
        let dump = f.drain_incidents().remove(0);
        assert_eq!(dump.events[0].name, "shared");
    }
}
