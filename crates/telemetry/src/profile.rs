//! Continuous profiling: allocation accounting attributed to pipeline
//! stages, periodic RSS sampling, and the Amdahl-style utilization
//! report rolled up from `qbeep-par` worker accounting.
//!
//! # Allocation accounting
//!
//! [`CountingAlloc`] wraps the system allocator and, when profiling is
//! on, charges every allocation's bytes and count to the *stage*
//! active on the allocating thread. Stages are opened with [`stage`]
//! (or implicitly by [`Recorder::span`](crate::Recorder::span) when
//! profiling is on, using the span's slash-joined path) and nest via
//! RAII [`StageGuard`]s. Because a `#[global_allocator]` must be
//! installed by the *binary*, library crates only export the type:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: qbeep_telemetry::CountingAlloc = qbeep_telemetry::CountingAlloc::new();
//! ```
//!
//! When profiling is off (the default) the allocator hot path is the
//! system allocator plus **one relaxed atomic load** — cheap enough to
//! leave installed permanently. The accounting path itself never
//! allocates, never locks, and survives TLS teardown (`try_with`), so
//! it is safe from any allocation context including thread exit.
//!
//! Stage ids are process-global and capped at [`MAX_STAGES`]; runs
//! with more distinct stages fold the excess into a final
//! `(overflow)` slot rather than losing bytes. Allocations on threads
//! with no open stage (including `qbeep-par` workers that have not
//! opened a span) land in the `(unattributed)` slot.
//!
//! # Memory statistics
//!
//! [`memory_stats`] is the one shared `/proc/self/status` parser:
//! current `VmRSS` and peak `VmHWM`, `None` on platforms without
//! procfs. [`RssSampler`] runs a background thread sampling `VmRSS`
//! periodically so a long run's resident-set trajectory (min / max /
//! last) is visible live from the introspection plane.
//!
//! # The profile report
//!
//! [`ProfileReport::collect`] fuses three sources — per-stage wall
//! time from recorded spans, per-stage allocation totals from the
//! counting allocator, and per-worker busy/task accounting from
//! [`qbeep_par::stats`] — into one serializable report: the `profile`
//! section of [`RunReport`](crate::RunReport), the
//! `BENCH_profile.json` artifact, and the `/profile` endpoint.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::report::SpanStat;

/// Number of per-stage accounting slots (slot 0 is `(unattributed)`,
/// the last slot is `(overflow)`).
pub const MAX_STAGES: usize = 64;

const UNATTRIBUTED: usize = 0;
const OVERFLOW: usize = MAX_STAGES - 1;

static PROFILING: AtomicBool = AtomicBool::new(false);
static ALLOC_BYTES: [AtomicU64; MAX_STAGES] = [const { AtomicU64::new(0) }; MAX_STAGES];
static ALLOC_COUNT: [AtomicU64; MAX_STAGES] = [const { AtomicU64::new(0) }; MAX_STAGES];

thread_local! {
    /// The stage id allocations on this thread are charged to.
    /// Const-initialized so the first read never allocates.
    static CURRENT_STAGE: Cell<usize> = const { Cell::new(UNATTRIBUTED) };
}

/// Interned stage names; index = stage id. Only touched from
/// [`stage`] and [`alloc_snapshot`], never from the allocator path.
fn stage_names() -> &'static Mutex<Vec<String>> {
    static NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(vec!["(unattributed)".to_string()]))
}

fn lock_names() -> std::sync::MutexGuard<'static, Vec<String>> {
    stage_names()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Turns allocation profiling on or off process-wide. Also mirrors the
/// switch into [`qbeep_par::stats`], so one call arms both the
/// allocator attribution and the worker accounting.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::SeqCst);
    qbeep_par::stats::set_enabled(on);
}

/// Whether allocation profiling is currently on.
#[must_use]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Zeroes the per-stage allocation totals and the `qbeep-par` worker
/// accounting. Interned stage names keep their ids (they are stable
/// process-wide).
pub fn reset_profile() {
    for slot in &ALLOC_BYTES {
        slot.store(0, Ordering::Relaxed);
    }
    for slot in &ALLOC_COUNT {
        slot.store(0, Ordering::Relaxed);
    }
    qbeep_par::stats::reset();
}

/// Interns `name`, returning its stable stage id. Past
/// [`MAX_STAGES`]` - 2` distinct names, everything shares the
/// `(overflow)` slot.
fn intern(name: &str) -> usize {
    let mut names = lock_names();
    if let Some(i) = names.iter().position(|n| n == name) {
        return i;
    }
    if names.len() < OVERFLOW {
        names.push(name.to_string());
        names.len() - 1
    } else {
        OVERFLOW
    }
}

/// The allocator-side accounting hook: one relaxed load when
/// profiling is off; never allocates, never locks, tolerates TLS
/// teardown.
#[inline]
fn note_alloc(bytes: usize) {
    if !PROFILING.load(Ordering::Relaxed) {
        return;
    }
    let stage = CURRENT_STAGE.try_with(Cell::get).unwrap_or(UNATTRIBUTED);
    ALLOC_BYTES[stage].fetch_add(bytes as u64, Ordering::Relaxed);
    ALLOC_COUNT[stage].fetch_add(1, Ordering::Relaxed);
}

/// RAII guard marking the active stage on the current thread;
/// restores the previous stage on drop, so stages nest like spans.
#[must_use = "a stage guard attributes allocations for its scope; bind it (`let _stage = …`)"]
#[derive(Debug)]
pub struct StageGuard {
    /// Stage id to restore; `None` when profiling was off at open time
    /// (the guard is then a no-op).
    prev: Option<usize>,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            // try_with: a guard dropped during thread teardown must
            // not panic.
            let _ = CURRENT_STAGE.try_with(|c| c.set(prev));
        }
    }
}

/// Opens a stage: until the returned guard drops, allocations on this
/// thread are charged to `name`. No-op (and no interning) when
/// profiling is off.
pub fn stage(name: &str) -> StageGuard {
    if !profiling_enabled() {
        return StageGuard { prev: None };
    }
    let id = intern(name);
    let prev = CURRENT_STAGE.with(|c| c.replace(id));
    StageGuard { prev: Some(prev) }
}

/// Per-stage allocation totals since the last [`reset_profile`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAlloc {
    /// Stage name (a span path, `(unattributed)`, or `(overflow)`).
    pub name: String,
    /// Bytes requested by allocations charged to this stage.
    pub bytes: u64,
    /// Number of allocations charged to this stage.
    pub count: u64,
}

/// Snapshots the per-stage allocation totals. Stages with zero
/// activity are omitted.
#[must_use]
pub fn alloc_snapshot() -> Vec<StageAlloc> {
    let names = lock_names().clone();
    let mut out = Vec::new();
    for i in 0..MAX_STAGES {
        let bytes = ALLOC_BYTES[i].load(Ordering::Relaxed);
        let count = ALLOC_COUNT[i].load(Ordering::Relaxed);
        if bytes == 0 && count == 0 {
            continue;
        }
        let name = if i == OVERFLOW && names.len() <= OVERFLOW {
            "(overflow)".to_string()
        } else {
            names
                .get(i)
                .cloned()
                .unwrap_or_else(|| "(overflow)".to_string())
        };
        out.push(StageAlloc { name, bytes, count });
    }
    out
}

/// A counting wrapper around the system allocator. Install it as the
/// `#[global_allocator]` in binaries that want allocation profiling;
/// when profiling is off it forwards straight through with a single
/// relaxed atomic load of overhead.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor, usable in a `static` initializer.
    #[must_use]
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// The only unsafe code in the crate: a pass-through `GlobalAlloc`
// whose safety contract is exactly the system allocator's — every
// call forwards verbatim, with accounting on the side.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() && new_size > layout.size() {
            // Charge only the growth: the original bytes were charged
            // at alloc time.
            note_alloc(new_size - layout.size());
        }
        new_ptr
    }
}

/// Point-in-time process memory statistics from `/proc/self/status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Current resident set size (`VmRSS`), in bytes.
    pub vm_rss_bytes: Option<u64>,
    /// Peak resident set size (`VmHWM`), in bytes.
    pub vm_hwm_bytes: Option<u64>,
}

/// Reads current (`VmRSS`) and peak (`VmHWM`) resident-set sizes from
/// `/proc/self/status`. The one shared procfs parser: returns `None`
/// on platforms without procfs (or when neither field parses), so
/// callers degrade gracefully instead of silently skipping families.
#[cfg(target_os = "linux")]
#[must_use]
pub fn memory_stats() -> Option<MemoryStats> {
    fn parse_kb(rest: &str) -> Option<u64> {
        let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
        Some(kb * 1024)
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut out = MemoryStats::default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            out.vm_rss_bytes = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            out.vm_hwm_bytes = parse_kb(rest);
        }
    }
    (out.vm_rss_bytes.is_some() || out.vm_hwm_bytes.is_some()).then_some(out)
}

/// Non-Linux fallback: no procfs, no memory statistics.
#[cfg(not(target_os = "linux"))]
#[must_use]
pub fn memory_stats() -> Option<MemoryStats> {
    None
}

/// Resident-set trajectory accumulated by an [`RssSampler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RssStats {
    /// Number of samples taken.
    pub samples: u64,
    /// Smallest sampled `VmRSS`, in bytes.
    pub min_bytes: u64,
    /// Largest sampled `VmRSS`, in bytes.
    pub max_bytes: u64,
    /// Most recent sampled `VmRSS`, in bytes.
    pub last_bytes: u64,
}

impl RssStats {
    fn record(&mut self, bytes: u64) {
        if self.samples == 0 {
            self.min_bytes = bytes;
            self.max_bytes = bytes;
        } else {
            self.min_bytes = self.min_bytes.min(bytes);
            self.max_bytes = self.max_bytes.max(bytes);
        }
        self.last_bytes = bytes;
        self.samples += 1;
    }
}

/// A cheap cloneable view of a sampler's accumulated [`RssStats`],
/// held by the introspection server while the run owns the sampler.
#[derive(Debug, Clone, Default)]
pub struct RssHandle {
    shared: Arc<Mutex<RssStats>>,
}

impl RssHandle {
    /// The trajectory accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RssStats {
        *self
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn record(&self, bytes: u64) {
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(bytes);
    }
}

/// Background thread sampling `VmRSS` every `period`. One sample is
/// taken synchronously at start, so even an immediately-dropped
/// sampler reports a trajectory. Dropping stops and joins the thread.
#[derive(Debug)]
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    shared: RssHandle,
}

impl RssSampler {
    /// Starts sampling every `period`. On platforms without procfs the
    /// sampler still runs but records nothing.
    #[must_use]
    pub fn start(period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = RssHandle::default();
        if let Some(stats) = memory_stats() {
            if let Some(rss) = stats.vm_rss_bytes {
                shared.record(rss);
            }
        }
        let thread_stop = Arc::clone(&stop);
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("qbeep-rss-sampler".to_string())
            .spawn(move || {
                // Sleep in short slices so shutdown is prompt even
                // with a long sampling period.
                let slice = period.min(Duration::from_millis(25));
                let mut elapsed = Duration::ZERO;
                while !thread_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed < period {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    if let Some(rss) = memory_stats().and_then(|m| m.vm_rss_bytes) {
                        thread_shared.record(rss);
                    }
                }
            })
            .ok();
        Self {
            stop,
            handle,
            shared,
        }
    }

    /// A cloneable view of the accumulated trajectory.
    #[must_use]
    pub fn handle(&self) -> RssHandle {
        self.shared.clone()
    }

    /// The trajectory accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RssStats {
        self.shared.stats()
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One stage's fused profile: wall time from spans, allocation totals
/// from the counting allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name (span path).
    pub name: String,
    /// Total wall time across runs of this stage, in milliseconds.
    pub wall_ms: f64,
    /// How many times the stage ran (0 for alloc-only stages).
    pub count: u64,
    /// Bytes allocated while the stage was active.
    pub alloc_bytes: u64,
    /// Allocations while the stage was active.
    pub alloc_count: u64,
}

/// One worker slot's utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Worker slot (shard index; slot 0 is the calling thread).
    pub worker: usize,
    /// Time spent inside shard closures, in milliseconds.
    pub busy_ms: f64,
    /// Shard closures executed.
    pub tasks: u64,
    /// `busy / total run wall` — the fraction of the whole run this
    /// slot was doing parallel work.
    pub utilization: f64,
}

/// Amdahl-style rollup of the `qbeep-par` accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelProfile {
    /// Effective worker-thread count at collection time.
    pub threads: usize,
    /// `map_ranges` dispatches (any shard count).
    pub dispatches: u64,
    /// Wall time spent inside multi-shard regions, in milliseconds.
    pub parallel_wall_ms: f64,
    /// Fraction of the total run wall spent *outside* parallel
    /// regions: the Amdahl serial fraction estimate, in `[0, 1]`.
    pub serial_fraction: f64,
    /// Max worker busy over mean worker busy (1.0 = perfectly
    /// balanced shards).
    pub imbalance: f64,
}

/// Resident-set section of the profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RssProfile {
    /// Samples taken by the [`RssSampler`].
    pub samples: u64,
    /// Smallest sampled `VmRSS`, in bytes.
    pub min_bytes: u64,
    /// Largest sampled `VmRSS`, in bytes.
    pub max_bytes: u64,
    /// Most recent sampled `VmRSS`, in bytes.
    pub last_bytes: u64,
    /// Peak RSS (`VmHWM`) at collection time, when procfs is
    /// available.
    pub peak_bytes: Option<u64>,
}

/// The fused continuous-profiling report: per-stage wall/alloc, RSS
/// trajectory, and per-worker utilization. Serialized as the
/// `profile` section of [`RunReport`](crate::RunReport), the
/// `BENCH_profile.json` artifact, and the `/profile` endpoint body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Total run wall time the utilization figures are relative to,
    /// in milliseconds.
    pub total_wall_ms: f64,
    /// Per-stage wall/allocation profile, span stages first (in span
    /// report order), alloc-only slots after.
    pub stages: Vec<StageProfile>,
    /// Per-worker busy/tasks/utilization.
    pub workers: Vec<WorkerProfile>,
    /// Amdahl-style parallelism rollup.
    pub parallel: ParallelProfile,
    /// Resident-set trajectory, when sampled.
    pub rss: Option<RssProfile>,
}

impl ProfileReport {
    /// Fuses the current profiling state into a report.
    ///
    /// `total_wall` is the run's wall time (utilization denominators);
    /// `spans` supplies per-stage wall time (stage names are span
    /// paths); `rss` is the sampler trajectory when one ran.
    #[must_use]
    pub fn collect(total_wall: Duration, spans: &[SpanStat], rss: Option<RssStats>) -> Self {
        let total_ms = total_wall.as_secs_f64() * 1e3;
        let allocs = alloc_snapshot();
        let mut stages: Vec<StageProfile> = spans
            .iter()
            .map(|s| {
                let alloc = allocs.iter().find(|a| a.name == s.path);
                StageProfile {
                    name: s.path.clone(),
                    wall_ms: s.total_ms,
                    count: s.count,
                    alloc_bytes: alloc.map_or(0, |a| a.bytes),
                    alloc_count: alloc.map_or(0, |a| a.count),
                }
            })
            .collect();
        for alloc in &allocs {
            if !stages.iter().any(|s| s.name == alloc.name) {
                stages.push(StageProfile {
                    name: alloc.name.clone(),
                    wall_ms: 0.0,
                    count: 0,
                    alloc_bytes: alloc.bytes,
                    alloc_count: alloc.count,
                });
            }
        }
        let par = qbeep_par::stats::snapshot();
        let workers = par
            .workers
            .iter()
            .map(|w| WorkerProfile {
                worker: w.worker,
                busy_ms: w.busy_ns as f64 / 1e6,
                tasks: w.tasks,
                utilization: if total_ms > 0.0 {
                    (w.busy_ns as f64 / 1e6) / total_ms
                } else {
                    0.0
                },
            })
            .collect();
        let parallel_wall_ms = par.parallel_wall_ns as f64 / 1e6;
        let serial_fraction = if total_ms > 0.0 {
            ((total_ms - parallel_wall_ms) / total_ms).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let mem = memory_stats();
        Self {
            total_wall_ms: total_ms,
            stages,
            workers,
            parallel: ParallelProfile {
                threads: qbeep_par::current_threads(),
                dispatches: par.dispatches,
                parallel_wall_ms,
                serial_fraction,
                imbalance: par.imbalance().unwrap_or(1.0),
            },
            rss: rss.map(|r| RssProfile {
                samples: r.samples,
                min_bytes: r.min_bytes,
                max_bytes: r.max_bytes,
                last_bytes: r.last_bytes,
                peak_bytes: mem.and_then(|m| m.vm_hwm_bytes),
            }),
        }
    }

    /// Renders the profile as aligned plain-text tables, matching the
    /// [`RunReport`](crate::RunReport) table style.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== profile ===\n  total_wall_ms {:.3}  threads {}  dispatches {}  \
             parallel_wall_ms {:.3}  serial_fraction {:.3}  imbalance {:.3}",
            self.total_wall_ms,
            self.parallel.threads,
            self.parallel.dispatches,
            self.parallel.parallel_wall_ms,
            self.parallel.serial_fraction,
            self.parallel.imbalance,
        );
        if let Some(rss) = &self.rss {
            let _ = writeln!(
                out,
                "  rss samples {}  min {}  max {}  last {}  peak {}",
                rss.samples,
                rss.min_bytes,
                rss.max_bytes,
                rss.last_bytes,
                rss.peak_bytes
                    .map_or_else(|| "-".to_string(), |b| b.to_string()),
            );
        }
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  stage {}  wall_ms {:.3}  count {}  alloc_bytes {}  alloc_count {}",
                s.name, s.wall_ms, s.count, s.alloc_bytes, s.alloc_count,
            );
        }
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  worker {}  busy_ms {:.3}  tasks {}  utilization {:.3}",
                w.worker, w.busy_ms, w.tasks, w.utilization,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_stats_exposes_rss_and_hwm_on_linux() {
        #[cfg(target_os = "linux")]
        {
            let stats = memory_stats().expect("procfs present on Linux");
            assert!(stats.vm_rss_bytes.unwrap() > 0);
            assert!(stats.vm_hwm_bytes.unwrap() >= stats.vm_rss_bytes.unwrap() / 2);
        }
        #[cfg(not(target_os = "linux"))]
        assert!(memory_stats().is_none());
    }

    #[test]
    fn rss_sampler_accumulates_and_stops() {
        let sampler = RssSampler::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(40));
        let stats = sampler.stats();
        drop(sampler);
        #[cfg(target_os = "linux")]
        {
            assert!(stats.samples >= 1, "no samples: {stats:?}");
            assert!(stats.min_bytes > 0);
            assert!(stats.max_bytes >= stats.min_bytes);
            assert!(stats.last_bytes >= stats.min_bytes);
        }
        #[cfg(not(target_os = "linux"))]
        assert_eq!(stats.samples, 0);
    }

    #[test]
    fn profile_report_fuses_spans_allocs_and_workers() {
        let spans = vec![SpanStat {
            path: "mitigate".to_string(),
            count: 2,
            total_ms: 10.0,
            min_ms: 4.0,
            max_ms: 6.0,
        }];
        let report = ProfileReport::collect(Duration::from_millis(20), &spans, None);
        assert!((report.total_wall_ms - 20.0).abs() < 1e-9);
        let stage = report.stages.iter().find(|s| s.name == "mitigate").unwrap();
        assert_eq!(stage.count, 2);
        assert!((stage.wall_ms - 10.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&report.parallel.serial_fraction));
        let json = serde_json::to_string(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let table = report.render_table();
        assert!(table.contains("=== profile ==="), "{table}");
        assert!(table.contains("mitigate"), "{table}");
    }
}
