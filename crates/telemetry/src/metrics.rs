//! Labeled metric families: the service-facing side of telemetry.
//!
//! The [`Recorder`](crate::Recorder) answers "what did *this run* do";
//! a daemon serving many requests needs the aggregate view — how many
//! jobs ran per `strategy`, how often the watchdog degraded per
//! `reason`, how long each `stage` took — addressable by small label
//! sets, in a form Prometheus can scrape. This module provides that:
//!
//! * [`MetricsRegistry`] — counter / gauge / histogram **families**
//!   keyed by metric name + [`LabelSet`]. Counters and histograms are
//!   **lock-sharded** per thread (a fixed pool of [`SHARD_COUNT`]
//!   mutexes selected by the recorder's thread id), so `qbeep-par`
//!   workers record without contending on a single lock. Gauges are
//!   last-write-wins and live in one dedicated slot.
//! * [`MetricsSnapshot`] — a point-in-time merge of every shard,
//!   sorted by family name then label set. Counter and histogram
//!   merging is a commutative sum, so a snapshot taken after a
//!   parallel run is identical at any thread count — the same
//!   invariant the mitigation output itself honours.
//! * Exposition: [`MetricsSnapshot::to_prometheus`] renders the
//!   Prometheus text format 0.0.4; [`MetricsSnapshot::to_jsonl`]
//!   renders one JSON object per sample for log pipelines.
//!
//! Like the recorder, a [`MetricsRegistry::disabled`] handle makes
//! every operation a single branch, so the engine default costs
//! nothing.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use crate::recorder::current_thread_id;

/// Number of per-thread shards counters and histograms spread over.
/// Sixteen is comfortably above the pool sizes `qbeep-par` uses, so
/// two workers rarely hash to the same mutex.
pub const SHARD_COUNT: usize = 16;

/// An ordered set of `label=value` pairs identifying one sample within
/// a metric family. Construction sorts by label name, so two sets with
/// the same pairs in different order compare (and render) identically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct LabelSet(Vec<(String, String)>);

impl LabelSet {
    /// The empty label set (an unlabeled sample).
    #[must_use]
    pub fn empty() -> Self {
        Self(Vec::new())
    }

    /// Builds a label set from pairs, sorting by label name. Later
    /// duplicates of the same name overwrite earlier ones.
    #[must_use]
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut map: BTreeMap<String, String> = BTreeMap::new();
        for (k, v) in pairs {
            map.insert((*k).to_string(), (*v).to_string());
        }
        Self(map.into_iter().collect())
    }

    /// The sorted `(name, value)` pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// True when the set holds no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Renders the set as `{k="v",…}` (empty string when unlabeled),
    /// with Prometheus label-value escaping.
    #[must_use]
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Renders like [`render`](Self::render) but with `extra` appended
    /// as one more pair (used for histogram `le` buckets).
    fn render_with(&self, extra_key: &str, extra_value: &str) -> String {
        let mut out = String::from("{");
        for (k, v) in &self.0 {
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(&mut out, v);
            out.push_str("\",");
        }
        out.push_str(extra_key);
        out.push_str("=\"");
        escape_label_value(&mut out, extra_value);
        out.push_str("\"}");
        out
    }
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value, last write wins.
    Gauge,
    /// Fixed-bucket distribution with sum and count.
    Histogram,
}

impl MetricKind {
    /// The lowercase Prometheus `# TYPE` name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// Default histogram bucket upper bounds for metric families, in the
/// unit the family observes (the convention here is milliseconds for
/// `*_ms` families): a coarse log-ish ladder from 250 µs to 10 s.
#[must_use]
pub fn default_metric_bounds() -> Vec<f64> {
    vec![
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
        10_000.0,
    ]
}

/// One histogram's raw state: per-bucket (non-cumulative) counts plus
/// moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramValue {
    /// Bucket upper bounds; `buckets[i]` counts values `≤ bounds[i]`
    /// and above the previous bound. `buckets` has one extra overflow
    /// slot at the end.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (not cumulative; `len == bounds.len() + 1`).
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramValue {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Self {
            bounds,
            buckets: vec![0; n + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Merges another histogram of the same bounds into this one
    /// (commutative, so shard merge order cannot matter).
    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.bounds, other.bounds);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The value of one sample in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramValue),
}

/// One `(labels, value)` sample within a family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// The sample's label set.
    pub labels: LabelSet,
    /// The sample's value.
    pub value: SampleValue,
}

/// One metric family in a snapshot: a name, a kind, help text and the
/// samples observed so far (sorted by label set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFamily {
    /// Family name (e.g. `qbeep_strategy_runs_total`).
    pub name: String,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// One-line help text for the `# HELP` exposition line.
    pub help: String,
    /// Samples, sorted by label set.
    pub samples: Vec<MetricSample>,
}

type Key = (String, LabelSet);

/// One lock shard: the counters and histograms recorded by the threads
/// that hash here.
#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, HistogramValue>,
}

/// Registered family metadata (help text, and for histograms the
/// bucket bounds every shard must agree on).
#[derive(Debug, Default)]
struct Descriptions {
    help: BTreeMap<String, String>,
    bounds: BTreeMap<String, Vec<f64>>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Mutex<Shard>>,
    gauges: Mutex<BTreeMap<Key, f64>>,
    descriptions: Mutex<Descriptions>,
}

/// A cheap, cloneable handle to a shared, lock-sharded metrics
/// registry. Clones share state; [`MetricsRegistry::disabled`] (also
/// the default) makes every operation a single branch.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// Creates an enabled registry with [`SHARD_COUNT`] lock shards.
    #[must_use]
    pub fn new() -> Self {
        let shards = (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect();
        Self {
            inner: Some(Arc::new(Inner {
                shards,
                gauges: Mutex::new(BTreeMap::new()),
                descriptions: Mutex::new(Descriptions::default()),
            })),
        }
    }

    /// Creates a no-op registry: every operation is a single branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        // Same poisoning stance as the recorder: a panic mid-record
        // must not silence diagnostics.
        mutex
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// This thread's shard.
    fn shard<'a>(inner: &'a Inner) -> MutexGuard<'a, Shard> {
        let idx = (current_thread_id() as usize) % inner.shards.len();
        Self::lock(&inner.shards[idx])
    }

    /// Registers help text for a family (shown on the `# HELP` line).
    /// Optional; undescribed families expose an empty help string.
    pub fn describe(&self, name: &str, help: &str) {
        if let Some(inner) = &self.inner {
            let mut desc = Self::lock(&inner.descriptions);
            desc.help.insert(name.to_string(), help.to_string());
        }
    }

    /// Sets custom histogram bucket bounds for `name` (must be called
    /// before the first observation; later calls only affect samples
    /// created afterwards).
    pub fn describe_histogram(&self, name: &str, help: &str, bounds: Vec<f64>) {
        if let Some(inner) = &self.inner {
            let mut desc = Self::lock(&inner.descriptions);
            desc.help.insert(name.to_string(), help.to_string());
            desc.bounds.insert(name.to_string(), bounds);
        }
    }

    /// Adds `by` to the counter `name{labels}`.
    pub fn inc(&self, name: &str, labels: &LabelSet, by: u64) {
        if let Some(inner) = &self.inner {
            let mut shard = Self::shard(inner);
            *shard
                .counters
                .entry((name.to_string(), labels.clone()))
                .or_insert(0) += by;
        }
    }

    /// Sets the gauge `name{labels}` to `value` (last write wins;
    /// gauges are deliberately *not* sharded, because concurrent
    /// last-write-wins merges across shards would be order-dependent).
    pub fn set_gauge(&self, name: &str, labels: &LabelSet, value: f64) {
        if let Some(inner) = &self.inner {
            let mut gauges = Self::lock(&inner.gauges);
            gauges.insert((name.to_string(), labels.clone()), value);
        }
    }

    /// Records `value` into the histogram `name{labels}` (bounds from
    /// [`describe_histogram`](Self::describe_histogram) or
    /// [`default_metric_bounds`]).
    pub fn observe(&self, name: &str, labels: &LabelSet, value: f64) {
        if let Some(inner) = &self.inner {
            let bounds = {
                let desc = Self::lock(&inner.descriptions);
                desc.bounds.get(name).cloned()
            };
            let mut shard = Self::shard(inner);
            shard
                .histograms
                .entry((name.to_string(), labels.clone()))
                .or_insert_with(|| {
                    HistogramValue::new(bounds.unwrap_or_else(default_metric_bounds))
                })
                .observe(value);
        }
    }

    /// Merges every shard into a sorted point-in-time snapshot.
    /// Counter and histogram merging is a commutative sum, so the
    /// result is independent of which thread recorded what — snapshots
    /// after a parallel run are bit-identical at any thread count.
    /// A disabled registry snapshots empty.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let mut counters: BTreeMap<Key, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<Key, HistogramValue> = BTreeMap::new();
        for mutex in &inner.shards {
            let shard = Self::lock(mutex);
            for (key, value) in &shard.counters {
                *counters.entry(key.clone()).or_insert(0) += value;
            }
            for (key, value) in &shard.histograms {
                histograms
                    .entry(key.clone())
                    .and_modify(|h| h.merge(value))
                    .or_insert_with(|| value.clone());
            }
        }
        let gauges = Self::lock(&inner.gauges).clone();
        let help = Self::lock(&inner.descriptions).help.clone();

        // Group sorted samples into families: name → (kind, samples).
        let mut families: BTreeMap<String, MetricFamily> = BTreeMap::new();
        let mut push = |name: &String, labels: &LabelSet, kind: MetricKind, value: SampleValue| {
            families
                .entry(name.clone())
                .or_insert_with(|| MetricFamily {
                    name: name.clone(),
                    kind,
                    help: help.get(name).cloned().unwrap_or_default(),
                    samples: Vec::new(),
                })
                .samples
                .push(MetricSample {
                    labels: labels.clone(),
                    value,
                });
        };
        for ((name, labels), value) in &counters {
            push(
                name,
                labels,
                MetricKind::Counter,
                SampleValue::Counter(*value),
            );
        }
        for ((name, labels), value) in &gauges {
            push(name, labels, MetricKind::Gauge, SampleValue::Gauge(*value));
        }
        for ((name, labels), value) in &histograms {
            push(
                name,
                labels,
                MetricKind::Histogram,
                SampleValue::Histogram(value.clone()),
            );
        }
        MetricsSnapshot {
            families: families.into_values().collect(),
        }
    }
}

/// A point-in-time, order-stable merge of a [`MetricsRegistry`]:
/// families sorted by name, samples sorted by label set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// The families, sorted by name.
    pub families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// True when no family holds any sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.iter().all(|f| f.samples.is_empty())
    }

    /// Looks up a family by name.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Returns a copy without timing-valued families (names ending in
    /// `_ms` or `_seconds`). Golden tests pin the *countable* side of
    /// a run — job totals, strategy outcomes — which is deterministic;
    /// wall-clock distributions are not.
    #[must_use]
    pub fn without_timings(&self) -> Self {
        Self {
            families: self
                .families
                .iter()
                .filter(|f| !f.name.ends_with("_ms") && !f.name.ends_with("_seconds"))
                .cloned()
                .collect(),
        }
    }

    /// Returns a copy without the named families (for filtering
    /// environment-dependent families out of pinned expositions).
    #[must_use]
    pub fn without_families(&self, names: &[&str]) -> Self {
        Self {
            families: self
                .families
                .iter()
                .filter(|f| !names.contains(&f.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Renders Prometheus text format 0.0.4: `# HELP` / `# TYPE`
    /// header lines per family, `name{labels} value` samples,
    /// histograms as cumulative `_bucket{le="…"}` series plus `_sum`
    /// and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            if family.samples.is_empty() {
                continue;
            }
            if !family.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(&family.name);
                out.push(' ');
                // HELP text escaping: backslash and newline.
                for c in family.help.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for sample in &family.samples {
                match &sample.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&family.name);
                        out.push_str(&sample.labels.render());
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&family.name);
                        out.push_str(&sample.labels.render());
                        out.push(' ');
                        out.push_str(&format_value(*v));
                        out.push('\n');
                    }
                    SampleValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in h.bounds.iter().enumerate() {
                            cumulative += h.buckets[i];
                            out.push_str(&family.name);
                            out.push_str("_bucket");
                            out.push_str(&sample.labels.render_with("le", &format_value(*bound)));
                            out.push(' ');
                            out.push_str(&cumulative.to_string());
                            out.push('\n');
                        }
                        out.push_str(&family.name);
                        out.push_str("_bucket");
                        out.push_str(&sample.labels.render_with("le", "+Inf"));
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                        out.push_str(&family.name);
                        out.push_str("_sum");
                        out.push_str(&sample.labels.render());
                        out.push(' ');
                        out.push_str(&format_value(h.sum));
                        out.push('\n');
                        out.push_str(&family.name);
                        out.push_str("_count");
                        out.push_str(&sample.labels.render());
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Renders one JSON object per sample (histograms flattened to
    /// `sum`/`count`/`buckets`), for log pipelines.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            for sample in &family.samples {
                let labels: BTreeMap<&str, &str> = sample
                    .labels
                    .pairs()
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let value = match &sample.value {
                    SampleValue::Counter(v) => serde_json::json!(v),
                    SampleValue::Gauge(v) => serde_json::json!(v),
                    SampleValue::Histogram(h) => serde_json::json!({
                        "sum": h.sum,
                        "count": h.count,
                        "bounds": h.bounds,
                        "buckets": h.buckets,
                    }),
                };
                let record = serde_json::json!({
                    "name": family.name,
                    "kind": family.kind.as_str(),
                    "labels": labels,
                    "value": value,
                });
                out.push_str(&record.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Formats an f64 the way Prometheus expects: integral values without
/// a trailing `.0`, everything else via Rust's shortest round-trip.
fn format_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Peak resident set size of this process in bytes (`VmHWM`), via the
/// shared [`memory_stats`](crate::memory_stats) procfs parser. Returns
/// `None` on platforms without procfs (or if the field is missing), so
/// callers degrade gracefully.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    crate::profile::memory_stats()?.vm_hwm_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_sets_sort_and_render() {
        let a = LabelSet::new(&[("strategy", "qbeep"), ("device", "fake_lagos")]);
        let b = LabelSet::new(&[("device", "fake_lagos"), ("strategy", "qbeep")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "{device=\"fake_lagos\",strategy=\"qbeep\"}");
        assert_eq!(LabelSet::empty().render(), "");
        let hostile = LabelSet::new(&[("k", "a\"b\\c\nd")]);
        assert_eq!(hostile.render(), "{k=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn counters_accumulate_across_label_sets() {
        let m = MetricsRegistry::new();
        let ok = LabelSet::new(&[("outcome", "ok")]);
        let err = LabelSet::new(&[("outcome", "error")]);
        m.inc("jobs_total", &ok, 2);
        m.inc("jobs_total", &ok, 3);
        m.inc("jobs_total", &err, 1);
        let snap = m.snapshot();
        let family = snap.family("jobs_total").unwrap();
        assert_eq!(family.kind, MetricKind::Counter);
        assert_eq!(family.samples.len(), 2);
        // Sorted by label set: error < ok.
        assert_eq!(family.samples[0].value, SampleValue::Counter(1));
        assert_eq!(family.samples[1].value, SampleValue::Counter(5));
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = MetricsRegistry::new();
        let l = LabelSet::empty();
        m.set_gauge("lambda", &l, 0.5);
        m.set_gauge("lambda", &l, 0.8);
        let snap = m.snapshot();
        assert_eq!(
            snap.family("lambda").unwrap().samples[0].value,
            SampleValue::Gauge(0.8)
        );
    }

    #[test]
    fn histogram_observes_and_renders_cumulative_buckets() {
        let m = MetricsRegistry::new();
        m.describe_histogram("latency_ms", "stage latency", vec![1.0, 10.0]);
        let l = LabelSet::new(&[("stage", "graph")]);
        for v in [0.5, 5.0, 50.0] {
            m.observe("latency_ms", &l, v);
        }
        let snap = m.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE latency_ms histogram"), "{text}");
        assert!(
            text.contains("latency_ms_bucket{stage=\"graph\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("latency_ms_bucket{stage=\"graph\",le=\"10\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("latency_ms_bucket{stage=\"graph\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("latency_ms_sum{stage=\"graph\"} 55.5"),
            "{text}"
        );
        assert!(
            text.contains("latency_ms_count{stage=\"graph\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_is_thread_count_invariant() {
        // The same logical workload recorded on 1 thread and on 8
        // threads must snapshot identically (commutative merges).
        let serial = MetricsRegistry::new();
        let labels = LabelSet::new(&[("strategy", "qbeep")]);
        for _ in 0..8 {
            for i in 0..100u64 {
                serial.inc("runs_total", &labels, 1);
                serial.observe("mass", &labels, (i % 10) as f64);
            }
        }

        let sharded = MetricsRegistry::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = sharded.clone();
                let labels = labels.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        m.inc("runs_total", &labels, 1);
                        m.observe("mass", &labels, (i % 10) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serial.snapshot(), sharded.snapshot());
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let m = MetricsRegistry::disabled();
        assert!(!m.is_enabled());
        let l = LabelSet::empty();
        m.inc("n", &l, 1);
        m.set_gauge("n", &l, 1.0);
        m.observe("n", &l, 1.0);
        m.describe("n", "help");
        assert!(m.snapshot().is_empty());
        assert!(!MetricsRegistry::default().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let clone = m.clone();
        clone.inc("shared", &LabelSet::empty(), 7);
        assert_eq!(
            m.snapshot().family("shared").unwrap().samples[0].value,
            SampleValue::Counter(7)
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = MetricsRegistry::new();
        m.describe("jobs_total", "Jobs processed");
        m.inc("jobs_total", &LabelSet::new(&[("outcome", "ok")]), 4);
        m.set_gauge("lambda", &LabelSet::empty(), 2.5);
        let text = m.snapshot().to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# HELP jobs_total Jobs processed",
                "# TYPE jobs_total counter",
                "jobs_total{outcome=\"ok\"} 4",
                "# TYPE lambda gauge",
                "lambda 2.5",
            ]
        );
    }

    #[test]
    fn jsonl_exposition_parses() {
        let m = MetricsRegistry::new();
        m.inc("jobs_total", &LabelSet::new(&[("outcome", "ok")]), 4);
        m.observe("mass", &LabelSet::empty(), 1.5);
        let jsonl = m.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["name"], "jobs_total");
        assert_eq!(first["labels"]["outcome"], "ok");
        assert_eq!(first["value"], 4);
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["value"]["count"], 1);
    }

    #[test]
    fn without_timings_and_without_families_filter() {
        let m = MetricsRegistry::new();
        m.inc("jobs_total", &LabelSet::empty(), 1);
        m.observe("stage_duration_ms", &LabelSet::empty(), 1.0);
        m.set_gauge("peak_rss_bytes", &LabelSet::empty(), 1.0);
        let snap = m.snapshot();
        assert_eq!(snap.families.len(), 3);
        let no_timings = snap.without_timings();
        assert!(no_timings.family("stage_duration_ms").is_none());
        assert!(no_timings.family("jobs_total").is_some());
        let filtered = snap.without_families(&["peak_rss_bytes"]);
        assert!(filtered.family("peak_rss_bytes").is_none());
        assert_eq!(filtered.families.len(), 2);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let m = MetricsRegistry::new();
        m.inc("jobs_total", &LabelSet::new(&[("outcome", "ok")]), 4);
        m.observe("mass", &LabelSet::empty(), 1.5);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // On Linux this must parse; elsewhere None is the contract.
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn format_value_edge_cases() {
        assert_eq!(format_value(2.0), "2");
        assert_eq!(format_value(2.5), "2.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(-0.0), "0");
    }
}
