//! In-tree observability for the Q-BEEP pipeline.
//!
//! The paper pitches Q-BEEP as "a light-weight post-processing
//! technique … a useful tool for quantum vendors to adopt"; a vendor
//! adopting it needs to see where time and probability mass go. This
//! crate is the instrumentation substrate every stage records into:
//!
//! * [`Recorder`] — a cheap, thread-safe sink for RAII **span** timers
//!   (nested wall-clock stages), monotonic **counters**, point-in-time
//!   **gauges**, fixed-bucket **histograms** and per-iteration
//!   **series**. [`Recorder::disabled`] is a no-op handle whose every
//!   operation is a single branch, so uninstrumented runs cost
//!   (almost) nothing — the engine default.
//! * [`RunReport`] — an immutable snapshot of everything a recorder
//!   saw, serializable to JSON via `serde` and renderable as aligned
//!   plain-text tables (the style of `qbeep-bench`'s report module).
//! * [`EventLog`] — the *timeline* side: every span instance and every
//!   explicit [`Recorder::event`] lands in a bounded ring buffer as a
//!   timestamped [`Event`], exportable as Chrome `trace_event` JSON
//!   (Perfetto / `chrome://tracing`) or streaming JSONL.
//! * [`ProvenanceManifest`] — the reproducibility header attached to
//!   run reports and bench artifacts: config and calibration digests
//!   (via the dependency-free [`Digest`]), a [`CircuitFingerprint`],
//!   the RNG seed and the crate version.
//! * [`MetricsRegistry`] — the *service* side: labeled counter /
//!   gauge / histogram families (`strategy`, `stage`, `device`,
//!   `outcome`…), lock-sharded per thread so parallel workers record
//!   without contention, snapshotting to Prometheus text format 0.0.4
//!   or JSONL via [`MetricsSnapshot`].
//! * [`FlightRecorder`] — always-on crash forensics: a bounded ring of
//!   recent events that [`FlightRecorder::incident`] freezes into a
//!   [`FlightDump`] (with the provenance manifest) whenever a job
//!   panics, the watchdog degrades or a fault fires.
//!
//! # Example
//!
//! ```
//! use qbeep_telemetry::Recorder;
//!
//! let recorder = Recorder::new();
//! {
//!     let _stage = recorder.span("transpile");
//!     let _pass = recorder.span("route"); // nests: "transpile/route"
//!     recorder.incr("swaps_inserted", 3);
//! }
//! recorder.gauge("lambda", 0.81);
//! recorder.push_series("mass_moved", 12.5);
//!
//! let report = recorder.report();
//! assert_eq!(report.counters["swaps_inserted"], 3);
//! assert!(report.span("transpile/route").is_some());
//! println!("{}", report.render_table());
//! ```
//!
//! The crate deliberately depends on nothing but `serde` and
//! `serde_json` (both already workspace-wide dependencies): no logging
//! frameworks, no external metrics registries, no global state.

// `deny` rather than `forbid`: the counting global allocator in
// `profile` is the one place that must implement `GlobalAlloc`
// (inherently unsafe) and carries a scoped `#[allow]` with its safety
// argument. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod flight;
mod introspect;
mod manifest;
mod metrics;
mod profile;
mod recorder;
mod report;

pub use events::{Event, EventLevel, EventLog, DEFAULT_EVENT_CAPACITY};
pub use flight::{FlightDump, FlightRecorder, DEFAULT_FLIGHT_CAPACITY, MAX_INCIDENTS};
pub use introspect::{stamp_memory_gauges, IntrospectServer, IntrospectSources, INTROSPECT_ENV};
pub use manifest::{CircuitFingerprint, Digest, ProvenanceManifest};
pub use metrics::{
    default_metric_bounds, peak_rss_bytes, HistogramValue, LabelSet, MetricFamily, MetricKind,
    MetricSample, MetricsRegistry, MetricsSnapshot, SampleValue, SHARD_COUNT,
};
pub use profile::{
    alloc_snapshot, memory_stats, profiling_enabled, reset_profile, set_profiling, stage,
    CountingAlloc, MemoryStats, ParallelProfile, ProfileReport, RssHandle, RssProfile, RssSampler,
    RssStats, StageAlloc, StageGuard, StageProfile, WorkerProfile, MAX_STAGES,
};
pub use recorder::{Recorder, Span};
pub use report::{HistogramStat, RunReport, SpanStat};
