//! Allocation-accounting attribution tests: this integration-test
//! binary installs [`CountingAlloc`] as its global allocator — the
//! same wiring `qbeep-cli` and `qbeep-bench` use — and checks that
//! bytes land on the stage that allocated them, across threads and
//! nesting, and that the disabled path records nothing.

use std::sync::Mutex;

use qbeep_telemetry::{
    alloc_snapshot, profiling_enabled, reset_profile, set_profiling, stage, CountingAlloc, Recorder,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Profiling state is process-global; tests that toggle it must not
/// interleave (the test harness runs them on separate threads).
static PROFILE_LOCK: Mutex<()> = Mutex::new(());

/// Allocates `bytes` bytes in one shot and keeps the buffer alive
/// until the returned value drops.
fn allocate(bytes: usize) -> Vec<u8> {
    std::hint::black_box(vec![0u8; bytes])
}

fn stage_bytes(name: &str) -> u64 {
    alloc_snapshot()
        .iter()
        .find(|s| s.name == name)
        .map_or(0, |s| s.bytes)
}

fn stage_count(name: &str) -> u64 {
    alloc_snapshot()
        .iter()
        .find(|s| s.name == name)
        .map_or(0, |s| s.count)
}

#[test]
fn bytes_land_on_the_active_stage_across_thread_counts() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    for threads in [1usize, 2, 8] {
        reset_profile();
        set_profiling(true);
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                std::thread::spawn(move || {
                    let _stage = stage(&format!("worker{i}"));
                    let buf = allocate(64 * 1024 + i);
                    buf.len()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_profiling(false);
        for i in 0..threads {
            let name = format!("worker{i}");
            assert!(
                stage_bytes(&name) >= 64 * 1024,
                "threads={threads}: stage {name} undercounted: {} bytes",
                stage_bytes(&name)
            );
            assert!(stage_count(&name) >= 1);
        }
    }
}

#[test]
fn nested_stages_attribute_to_the_innermost_guard() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    reset_profile();
    set_profiling(true);
    let outer_buf;
    let inner_bytes;
    {
        let _outer = stage("outer");
        outer_buf = allocate(128 * 1024);
        {
            let _inner = stage("outer/inner");
            let buf = allocate(256 * 1024);
            inner_bytes = buf.len();
            std::hint::black_box(&buf);
        }
        // Back on the outer stage after the inner guard dropped.
        let tail = allocate(32 * 1024);
        std::hint::black_box(&tail);
    }
    set_profiling(false);
    std::hint::black_box((&outer_buf, inner_bytes));
    let outer = stage_bytes("outer");
    let inner = stage_bytes("outer/inner");
    assert!(
        (256 * 1024..256 * 1024 + 64 * 1024).contains(&inner),
        "inner stage got {inner} bytes"
    );
    assert!(
        outer >= 128 * 1024 + 32 * 1024,
        "outer stage got {outer} bytes"
    );
}

#[test]
fn recorder_spans_open_stages_when_profiling() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    reset_profile();
    set_profiling(true);
    let recorder = Recorder::new();
    {
        let _span = recorder.span("mitigate");
        let _hold = allocate(96 * 1024);
        {
            let _nested = recorder.span("graph_build");
            let buf = allocate(48 * 1024);
            std::hint::black_box(&buf);
        }
    }
    set_profiling(false);
    assert!(
        stage_bytes("mitigate") >= 96 * 1024,
        "span stage undercounted: {}",
        stage_bytes("mitigate")
    );
    assert!(
        stage_bytes("mitigate/graph_build") >= 48 * 1024,
        "nested span stage undercounted: {}",
        stage_bytes("mitigate/graph_build")
    );
}

#[test]
fn disabled_profiling_records_nothing() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    reset_profile();
    assert!(!profiling_enabled());
    {
        let _stage = stage("ghost");
        let buf = allocate(512 * 1024);
        std::hint::black_box(&buf);
    }
    let snapshot = alloc_snapshot();
    assert!(
        snapshot.is_empty(),
        "disabled profiler recorded: {snapshot:?}"
    );
}

#[test]
fn unattributed_allocations_fall_into_slot_zero() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    reset_profile();
    set_profiling(true);
    // No stage open on this thread: bytes land in `(unattributed)`.
    let buf = allocate(80 * 1024);
    std::hint::black_box(&buf);
    set_profiling(false);
    assert!(
        stage_bytes("(unattributed)") >= 80 * 1024,
        "unattributed slot got {} bytes",
        stage_bytes("(unattributed)")
    );
}
