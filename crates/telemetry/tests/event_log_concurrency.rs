//! `EventLog` ring-buffer semantics under concurrent writers: the
//! bounded ring must never lose accounting (kept + dropped == emitted),
//! must evict oldest-first, and must preserve both per-thread emission
//! order and global timestamp order — at thread counts 1, 2 and 8 and
//! the seeds the parallel-parity matrix uses (1, 7, 23).

use qbeep_telemetry::Recorder;

const THREADS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [1, 7, 23];
const CAPACITY: usize = 64;

/// SplitMix64, seeded per (seed, writer) pair so every writer emits a
/// reproducible but distinct workload.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs `writers` concurrent threads against one recorder, each
/// emitting a seed-determined number of named events, and returns the
/// per-writer emission counts.
fn hammer(recorder: &Recorder, writers: usize, seed: u64) -> Vec<usize> {
    let counts: Vec<usize> = (0..writers)
        .map(|w| {
            let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(w as u64));
            50 + (rng.next_u64() % 100) as usize
        })
        .collect();
    let handles: Vec<_> = counts
        .iter()
        .enumerate()
        .map(|(w, &n)| {
            let r = recorder.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    r.event(
                        qbeep_telemetry::EventLevel::Debug,
                        &format!("w{w}-e{i}"),
                        &[("i", i.to_string())],
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    counts
}

/// Splits an event name `w{w}-e{i}` back into its writer and sequence
/// number.
fn parse_name(name: &str) -> (usize, usize) {
    let (w, e) = name.split_once("-e").expect("w{w}-e{i} name");
    (
        w.strip_prefix('w').unwrap().parse().unwrap(),
        e.parse().unwrap(),
    )
}

#[test]
fn ring_accounting_survives_concurrent_wraparound() {
    for &writers in &THREADS {
        for &seed in &SEEDS {
            let recorder = Recorder::with_event_capacity(CAPACITY);
            let counts = hammer(&recorder, writers, seed);
            let emitted: usize = counts.iter().sum();
            let log = recorder.events();
            assert_eq!(log.capacity, CAPACITY);
            assert_eq!(
                log.len() + log.dropped as usize,
                emitted,
                "writers={writers} seed={seed}: kept + dropped must equal emitted"
            );
            assert_eq!(
                log.len(),
                emitted.min(CAPACITY),
                "writers={writers} seed={seed}: ring fills to capacity exactly"
            );
        }
    }
}

#[test]
fn survivors_are_each_writers_newest_suffix_in_order() {
    for &writers in &THREADS {
        for &seed in &SEEDS {
            let recorder = Recorder::with_event_capacity(CAPACITY);
            let counts = hammer(&recorder, writers, seed);
            let log = recorder.events();
            // Per writer: surviving sequence numbers must be strictly
            // increasing (per-thread order preserved) and form a
            // contiguous suffix of that writer's emissions (oldest
            // evicted first, and a writer's own events pass through
            // the ring in emission order).
            for (w, &emitted) in counts.iter().enumerate() {
                let seen: Vec<usize> = log
                    .events
                    .iter()
                    .filter_map(|e| {
                        let (writer, i) = parse_name(&e.name);
                        (writer == w).then_some(i)
                    })
                    .collect();
                assert!(
                    seen.windows(2).all(|p| p[0] < p[1]),
                    "writers={writers} seed={seed} w={w}: out of order: {seen:?}"
                );
                if let Some(&first) = seen.first() {
                    let expected: Vec<usize> = (first..emitted).collect();
                    assert_eq!(
                        seen, expected,
                        "writers={writers} seed={seed} w={w}: survivors must be a contiguous newest suffix"
                    );
                }
            }
        }
    }
}

#[test]
fn ring_timestamps_are_monotone_nondecreasing() {
    for &writers in &THREADS {
        for &seed in &SEEDS {
            let recorder = Recorder::with_event_capacity(CAPACITY);
            hammer(&recorder, writers, seed);
            let log = recorder.events();
            assert!(
                log.events
                    .windows(2)
                    .all(|p| p[0].start_us <= p[1].start_us),
                "writers={writers} seed={seed}: ring order must follow the clock"
            );
        }
    }
}

#[test]
fn serial_single_writer_keeps_exact_tail() {
    // The degenerate corner pinned exactly: one writer, known
    // overflow, the tail is predictable element for element.
    let recorder = Recorder::with_event_capacity(4);
    for i in 0..10 {
        recorder.event(qbeep_telemetry::EventLevel::Info, &format!("w0-e{i}"), &[]);
    }
    let log = recorder.events();
    assert_eq!(log.dropped, 6);
    let names: Vec<&str> = log.events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["w0-e6", "w0-e7", "w0-e8", "w0-e9"]);
}
