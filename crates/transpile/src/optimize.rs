//! Peephole optimisation passes over basis circuits — the classical
//! "pre-circuit-induction" error-mitigation step of §2.3 (gate
//! cancellation reduces the global error rate before anything runs).

use std::f64::consts::TAU;

use qbeep_circuit::{Circuit, Gate, Instruction};

/// Runs the full pass pipeline to a fixed point: identity/zero-rotation
/// removal, adjacent-inverse cancellation, and RZ merging.
///
/// # Example
///
/// ```
/// use qbeep_circuit::Circuit;
/// use qbeep_transpile::optimize::optimize;
///
/// let mut c = Circuit::new(2, "redundant");
/// c.cx(0, 1).cx(0, 1).rz(0.3, 0).rz(-0.3, 0);
/// let opt = optimize(&c);
/// assert_eq!(opt.gate_count(), 0);
/// ```
#[must_use]
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut insts: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let before = insts.len();
        insts = drop_trivial(insts);
        insts = cancel_adjacent_inverses(insts);
        insts = merge_rz(insts);
        if insts.len() == before {
            break;
        }
    }
    let mut out = Circuit::new(circuit.num_qubits(), circuit.name().to_string());
    out.set_measured(circuit.measured().to_vec());
    for i in insts {
        out.push(i);
    }
    out
}

/// Normalises an angle into `(-π, π]` and reports whether it is
/// negligible (identity rotation).
fn normalize_angle(t: f64) -> f64 {
    let mut a = t % TAU;
    if a > TAU / 2.0 {
        a -= TAU;
    } else if a <= -TAU / 2.0 {
        a += TAU;
    }
    a
}

const ANGLE_EPS: f64 = 1e-12;

/// Removes explicit identities and zero-angle rotations.
fn drop_trivial(insts: Vec<Instruction>) -> Vec<Instruction> {
    insts
        .into_iter()
        .filter(|i| match i.gate() {
            Gate::I => false,
            Gate::RZ(t) | Gate::RX(t) | Gate::RY(t) | Gate::P(t) => {
                normalize_angle(*t).abs() > ANGLE_EPS
            }
            _ => true,
        })
        .collect()
}

/// Whether two gates on identical qubit lists cancel to the identity.
fn cancels(a: &Gate, b: &Gate) -> bool {
    match (a, b) {
        (Gate::RZ(x), Gate::RZ(y)) | (Gate::RX(x), Gate::RX(y)) | (Gate::RY(x), Gate::RY(y)) => {
            normalize_angle(x + y).abs() <= ANGLE_EPS
        }
        _ => a.inverse() == *b,
    }
}

/// Cancels pairs of mutually inverse gates that are adjacent in the
/// per-qubit dependency order (no intervening gate touches any shared
/// qubit). One sweep; the driver loops to a fixed point.
fn cancel_adjacent_inverses(insts: Vec<Instruction>) -> Vec<Instruction> {
    let mut keep = vec![true; insts.len()];
    for i in 0..insts.len() {
        if !keep[i] {
            continue;
        }
        // Find the next kept instruction that overlaps instruction i.
        for j in i + 1..insts.len() {
            if !keep[j] {
                continue;
            }
            if insts[j].overlaps(&insts[i]) {
                if insts[j].qubits() == insts[i].qubits()
                    && cancels(insts[i].gate(), insts[j].gate())
                {
                    keep[i] = false;
                    keep[j] = false;
                }
                break;
            }
        }
    }
    insts
        .into_iter()
        .zip(keep)
        .filter_map(|(inst, k)| k.then_some(inst))
        .collect()
}

/// Merges runs of RZ gates on the same qubit separated only by gates on
/// other qubits.
fn merge_rz(insts: Vec<Instruction>) -> Vec<Instruction> {
    let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());
    // Index into `out` of the last pending RZ per qubit, if its qubit
    // has seen no later gate.
    let mut pending: Vec<Option<usize>> = Vec::new();
    for inst in insts {
        let q0 = inst.qubits()[0] as usize;
        let max_q = inst.max_qubit() as usize;
        if pending.len() <= max_q {
            pending.resize(max_q + 1, None);
        }
        if let Gate::RZ(t) = inst.gate() {
            if let Some(idx) = pending[q0] {
                if let Gate::RZ(prev) = out[idx].gate() {
                    let merged = normalize_angle(prev + t);
                    if merged.abs() <= ANGLE_EPS {
                        out.remove(idx);
                        // Re-index pending pointers past the removal.
                        for p in pending.iter_mut().flatten() {
                            if *p > idx {
                                *p -= 1;
                            }
                        }
                        pending[q0] = None;
                    } else {
                        out[idx] = Instruction::new(Gate::RZ(merged), vec![q0 as u32]);
                    }
                    continue;
                }
            }
            pending[q0] = Some(out.len());
            out.push(inst);
        } else {
            for &q in inst.qubits() {
                pending[q as usize] = None;
            }
            out.push(inst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_adjacent_cx_pairs() {
        let mut c = Circuit::new(2, "t");
        c.cx(0, 1).cx(0, 1);
        assert_eq!(optimize(&c).gate_count(), 0);
    }

    #[test]
    fn does_not_cancel_across_blockers() {
        let mut c = Circuit::new(2, "t");
        c.cx(0, 1).x(1).cx(0, 1);
        assert_eq!(optimize(&c).gate_count(), 3);
    }

    #[test]
    fn cancels_through_disjoint_gates() {
        let mut c = Circuit::new(3, "t");
        c.cx(0, 1).x(2).cx(0, 1);
        // X on qubit 2 does not block the CX pair.
        let opt = optimize(&c);
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(opt.instructions()[0].gate(), &Gate::X);
    }

    #[test]
    fn merges_rz_runs() {
        let mut c = Circuit::new(1, "t");
        c.rz(0.25, 0).rz(0.5, 0).rz(0.25, 0);
        let opt = optimize(&c);
        assert_eq!(opt.gate_count(), 1);
        match opt.instructions()[0].gate() {
            Gate::RZ(t) => assert!((t - 1.0).abs() < 1e-12),
            g => panic!("unexpected gate {g}"),
        }
    }

    #[test]
    fn merges_rz_across_other_qubits() {
        let mut c = Circuit::new(2, "t");
        c.rz(0.2, 0).x(1).rz(0.3, 0);
        let opt = optimize(&c);
        assert_eq!(opt.gate_count(), 2);
    }

    #[test]
    fn rz_merge_blocked_by_sx() {
        let mut c = Circuit::new(1, "t");
        c.rz(0.2, 0).sx(0).rz(0.3, 0);
        assert_eq!(optimize(&c).gate_count(), 3);
    }

    #[test]
    fn drops_zero_rotations_and_identity() {
        let mut c = Circuit::new(1, "t");
        c.rz(0.0, 0)
            .apply(Gate::I, &[0])
            .rz(std::f64::consts::TAU, 0);
        assert_eq!(optimize(&c).gate_count(), 0);
    }

    #[test]
    fn cancels_inverse_rotations() {
        let mut c = Circuit::new(1, "t");
        c.rx(0.7, 0).rx(-0.7, 0);
        assert_eq!(optimize(&c).gate_count(), 0);
    }

    #[test]
    fn cancels_s_sdg() {
        let mut c = Circuit::new(1, "t");
        c.s(0).sdg(0);
        assert_eq!(optimize(&c).gate_count(), 0);
    }

    #[test]
    fn fixed_point_cascades() {
        // h h wraps a cx cx pair: one sweep removes the cx pair, the
        // next removes the h pair.
        let mut c = Circuit::new(2, "t");
        c.h(0).cx(0, 1).cx(0, 1).h(0);
        assert_eq!(optimize(&c).gate_count(), 0);
    }

    #[test]
    fn preserves_functional_gates() {
        let mut c = Circuit::new(2, "t");
        c.h(0).cx(0, 1).rz(0.4, 1);
        let opt = optimize(&c);
        assert_eq!(opt.gate_count(), 3);
        assert_eq!(opt.measured(), c.measured());
    }
}
