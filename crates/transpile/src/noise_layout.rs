//! Noise-aware initial layout: place the circuit on the
//! best-calibrated connected region of the device.
//!
//! The plain [`greedy_layout`] only looks
//! at the coupling graph; on large devices whole regions differ
//! substantially in quality (the per-machine tiers of the synthetic
//! fleet model this). Selecting a low-error region directly lowers
//! every term of the λ model — this pass is the transpiler-side
//! complement to Q-BEEP's post-processing, and the `ablations` bench
//! quantifies its effect.

use qbeep_circuit::Circuit;
use qbeep_device::Backend;

use crate::layout::{greedy_layout, Layout};

/// A composite error score for physical qubit `q`: readout error +
/// single-qubit gate error + the mean error of its incident CX edges.
/// Lower is better.
fn qubit_score(backend: &Backend, q: u32) -> f64 {
    let cal = backend.calibration();
    let neighbors = backend.topology().neighbors(q);
    let cx_mean = if neighbors.is_empty() {
        0.5 // an isolated qubit is useless for multi-qubit circuits
    } else {
        neighbors
            .iter()
            .filter_map(|&n| cal.cx_error(q, n))
            .sum::<f64>()
            / neighbors.len() as f64
    };
    cal.qubit(q).readout_error + cal.sq_gate(q).error + cx_mean
}

/// Greedily grows a connected region of `size` qubits from `seed`,
/// always absorbing the frontier qubit with the best (score + edge
/// error into the region). Returns `None` if the component is too
/// small.
fn grow_region(backend: &Backend, seed: u32, size: usize) -> Option<(Vec<u32>, f64)> {
    let topo = backend.topology();
    let cal = backend.calibration();
    let mut region = vec![seed];
    let mut total = qubit_score(backend, seed);
    while region.len() < size {
        let mut best: Option<(f64, u32)> = None;
        for &r in &region {
            for n in topo.neighbors(r) {
                if region.contains(&n) {
                    continue;
                }
                let edge_err = cal.cx_error(r, n).unwrap_or(0.5);
                let score = qubit_score(backend, n) + edge_err;
                if best.is_none_or(|(s, bq)| score < s || (score == s && n < bq)) {
                    best = Some((score, n));
                }
            }
        }
        let (score, q) = best?;
        region.push(q);
        total += score;
        // Keep the region sorted for deterministic downstream behaviour.
        region.sort_unstable();
    }
    Some((region, total))
}

/// Chooses a noise-aware layout: evaluates a region grown from every
/// physical qubit, keeps the lowest-total-error one, and runs the
/// interaction-greedy placement inside it.
///
/// Falls back to the whole-device greedy layout when the circuit needs
/// every qubit.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the device has or the
/// device cannot host a connected region of the required size.
#[must_use]
pub fn noise_aware_layout(circuit: &Circuit, backend: &Backend) -> Layout {
    let n_logical = circuit.num_qubits();
    let n_physical = backend.num_qubits();
    assert!(
        n_logical <= n_physical,
        "{n_logical} logical qubits exceed {n_physical}"
    );
    if n_logical == n_physical {
        return greedy_layout(circuit, backend.topology());
    }

    // Candidate regions, one grown from each seed. Primary criterion is
    // total calibrated error, but denser regions route with fewer
    // SWAPs, so within a 5% error band prefer more internal edges —
    // otherwise a pristine but stringy region can cost more λ through
    // routing than it saves in gate fidelity.
    let internal_edges = |region: &[u32]| backend.topology().induced_subgraph(region).num_edges();
    let mut best: Option<(f64, usize, Vec<u32>)> = None;
    for seed in 0..n_physical as u32 {
        if let Some((region, total)) = grow_region(backend, seed, n_logical) {
            let edges = internal_edges(&region);
            let better = match &best {
                None => true,
                Some((t, e, r)) => {
                    if total < t * 0.95 {
                        true
                    } else if total <= t * 1.05 {
                        edges > *e || (edges == *e && (total < *t || (total == *t && region < *r)))
                    } else {
                        false
                    }
                }
            };
            if better {
                best = Some((total, edges, region));
            }
        }
    }
    let (_, _, region) = best.expect("device has no connected region of the required size");

    // Lay out inside the region, then translate back to device ids.
    let sub = backend.topology().induced_subgraph(&region);
    let local = greedy_layout(circuit, &sub);
    Layout::new(
        local
            .as_slice()
            .iter()
            .map(|&l| region[l as usize])
            .collect(),
    )
}

/// Total calibrated error mass of a layout's region — exposed so
/// experiments can compare layout strategies.
#[must_use]
pub fn layout_error_score(layout: &Layout, backend: &Backend) -> f64 {
    layout
        .as_slice()
        .iter()
        .map(|&q| qubit_score(backend, q))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbeep_circuit::library::cat_state;
    use qbeep_device::profiles;

    #[test]
    fn layout_is_injective_and_in_range() {
        let backend = profiles::by_name("fake_toronto").unwrap();
        let circuit = cat_state(6);
        let layout = noise_aware_layout(&circuit, &backend);
        assert_eq!(layout.len(), 6);
        let mut v = layout.as_slice().to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|&q| (q as usize) < backend.num_qubits()));
    }

    #[test]
    fn region_is_connected() {
        let backend = profiles::by_name("fake_washington").unwrap();
        let circuit = cat_state(8);
        let layout = noise_aware_layout(&circuit, &backend);
        let sub = backend.topology().induced_subgraph(layout.as_slice());
        assert!(sub.is_connected());
    }

    #[test]
    fn beats_or_matches_plain_layout_on_error_score() {
        let backend = profiles::by_name("fake_brooklyn").unwrap();
        let circuit = cat_state(7);
        let plain = greedy_layout(&circuit, backend.topology());
        let aware = noise_aware_layout(&circuit, &backend);
        assert!(
            layout_error_score(&aware, &backend) <= layout_error_score(&plain, &backend) + 1e-12
        );
    }

    #[test]
    fn full_device_falls_back() {
        let backend = profiles::by_name("fake_lima").unwrap();
        let circuit = cat_state(5);
        let layout = noise_aware_layout(&circuit, &backend);
        assert_eq!(layout.len(), 5);
    }

    #[test]
    fn deterministic() {
        let backend = profiles::by_name("fake_mumbai").unwrap();
        let circuit = cat_state(5);
        assert_eq!(
            noise_aware_layout(&circuit, &backend),
            noise_aware_layout(&circuit, &backend)
        );
    }
}
