//! Transpilation errors.

use std::error::Error;
use std::fmt;

/// Error returned when a circuit cannot be lowered to a backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// The circuit uses more qubits than the backend has.
    TooManyQubits {
        /// Qubits the circuit needs.
        needed: usize,
        /// Qubits the backend provides.
        available: usize,
    },
    /// The backend's coupling graph is disconnected, so routing cannot
    /// reach every qubit.
    DisconnectedBackend,
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyQubits { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the backend provides only {available}"
            ),
            Self::DisconnectedBackend => {
                write!(f, "backend coupling graph is disconnected")
            }
        }
    }
}

impl Error for TranspileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = TranspileError::TooManyQubits {
            needed: 9,
            available: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(TranspileError::DisconnectedBackend
            .to_string()
            .contains("disconnected"));
    }
}
