//! Transpiler substrate for the Q-BEEP reproduction.
//!
//! Lowers algorithm circuits ([`qbeep_circuit::Circuit`]) to a specific
//! backend ([`qbeep_device::Backend`]):
//!
//! 1. **decomposition** to the IBM native basis `{rz, sx, x, cx}`
//!    ([`decompose`]),
//! 2. **optimisation** — adjacent-inverse cancellation, RZ merging and
//!    identity removal ([`optimize`]), the "pre-circuit QEM" of §2.3,
//! 3. **layout** — logical→physical qubit placement ([`layout`]),
//! 4. **routing** — SWAP insertion (as CX triples) so every CX acts on
//!    coupled qubits ([`route`]),
//! 5. **scheduling** — ASAP timing against calibration durations,
//!    yielding the end-to-end circuit time `t_circuit` that the λ model
//!    (paper Eq. 2) consumes ([`schedule`]).
//!
//! The result is a [`TranspiledCircuit`]: a basis-only physical circuit
//! with its qubit maps, duration, and gate statistics.
//!
//! # Example
//!
//! ```
//! use qbeep_circuit::library::bernstein_vazirani;
//! use qbeep_device::profiles;
//! use qbeep_transpile::Transpiler;
//!
//! let backend = profiles::by_name("fake_lima").unwrap();
//! let bv = bernstein_vazirani(&"1011".parse().unwrap());
//! let t = Transpiler::new(&backend).transpile(&bv)?;
//! assert!(t.circuit().is_basis_only());
//! assert!(t.duration_ns() > 0.0);
//! # Ok::<(), qbeep_transpile::TranspileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod layout;
pub mod noise_layout;
pub mod optimize;
pub mod route;
pub mod schedule;

mod error;
mod transpiled;
mod transpiler;

pub use error::TranspileError;
pub use transpiled::TranspiledCircuit;
pub use transpiler::{LayoutStrategy, Transpiler};
