//! The transpilation pipeline driver.

use std::time::Instant;

use qbeep_circuit::Circuit;
use qbeep_device::Backend;
use qbeep_telemetry::Recorder;

use crate::decompose::to_basis;
use crate::layout::greedy_layout;
use crate::noise_layout::noise_aware_layout;
use crate::optimize::optimize;
use crate::route::route;
use crate::schedule::schedule;
use crate::{TranspileError, TranspiledCircuit};

/// Which initial-placement algorithm the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutStrategy {
    /// Interaction-greedy placement over the whole device (topology
    /// only) — the default.
    #[default]
    InteractionGreedy,
    /// Calibration-guided placement on the best-error connected region
    /// (see [`crate::noise_layout`]).
    NoiseAware,
}

/// Lowers logical circuits onto one backend:
/// decompose → optimise → layout → route → optimise → schedule.
///
/// # Example
///
/// ```
/// use qbeep_circuit::library::cat_state;
/// use qbeep_device::profiles;
/// use qbeep_transpile::Transpiler;
///
/// let backend = profiles::by_name("fake_manila").unwrap();
/// let t = Transpiler::new(&backend).transpile(&cat_state(4))?;
/// assert!(t.cx_count() >= 3);
/// # Ok::<(), qbeep_transpile::TranspileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Transpiler<'a> {
    backend: &'a Backend,
    optimization: bool,
    layout_strategy: LayoutStrategy,
}

impl<'a> Transpiler<'a> {
    /// Creates a transpiler for `backend` with optimisation enabled and
    /// the interaction-greedy layout.
    #[must_use]
    pub fn new(backend: &'a Backend) -> Self {
        Self {
            backend,
            optimization: true,
            layout_strategy: LayoutStrategy::default(),
        }
    }

    /// Enables or disables the peephole optimisation passes (used by
    /// ablation benches to quantify the pre-circuit-QEM contribution).
    #[must_use]
    pub fn with_optimization(mut self, enabled: bool) -> Self {
        self.optimization = enabled;
        self
    }

    /// Selects the initial-placement algorithm.
    #[must_use]
    pub fn with_layout_strategy(mut self, strategy: LayoutStrategy) -> Self {
        self.layout_strategy = strategy;
        self
    }

    /// Lowers `circuit` to the backend.
    ///
    /// # Errors
    ///
    /// * [`TranspileError::TooManyQubits`] if the circuit is wider than
    ///   the backend.
    /// * [`TranspileError::DisconnectedBackend`] if the coupling graph
    ///   cannot route.
    pub fn transpile(&self, circuit: &Circuit) -> Result<TranspiledCircuit, TranspileError> {
        self.transpile_recorded(circuit, &Recorder::disabled())
    }

    /// [`transpile`](Self::transpile), reporting per-pass wall times
    /// ("transpile/decompose" … "transpile/schedule" spans plus the
    /// "transpile.pass_ms" histogram) and gate statistics
    /// (`transpile.gates_in/gates_lowered/gates_out/cx_out` counters,
    /// `transpile.depth`/`transpile.duration_ns` gauges) to `recorder`.
    ///
    /// With a disabled recorder this is exactly [`transpile`](Self::transpile).
    ///
    /// # Errors
    ///
    /// Same as [`transpile`](Self::transpile).
    pub fn transpile_recorded(
        &self,
        circuit: &Circuit,
        recorder: &Recorder,
    ) -> Result<TranspiledCircuit, TranspileError> {
        let _span = recorder.span("transpile");
        let needed = circuit.num_qubits();
        let available = self.backend.num_qubits();
        if needed > available {
            return Err(TranspileError::TooManyQubits { needed, available });
        }
        if !self.backend.topology().is_connected() {
            return Err(TranspileError::DisconnectedBackend);
        }
        recorder.incr("transpile.gates_in", circuit.gate_count() as u64);

        let mut lowered = pass(recorder, "decompose", || to_basis(circuit));
        if self.optimization {
            let optimized = pass(recorder, "optimize_logical", || optimize(&lowered));
            lowered = optimized;
        }
        recorder.incr("transpile.gates_lowered", lowered.gate_count() as u64);
        let layout = pass(recorder, "layout", || match self.layout_strategy {
            LayoutStrategy::InteractionGreedy => greedy_layout(&lowered, self.backend.topology()),
            LayoutStrategy::NoiseAware => noise_aware_layout(&lowered, self.backend),
        });
        let routed = pass(recorder, "route", || {
            route(&lowered, self.backend.topology(), &layout)
        });
        let physical = if self.optimization {
            pass(recorder, "optimize_physical", || optimize(&routed.circuit))
        } else {
            routed.circuit
        };
        let sched = pass(recorder, "schedule", || {
            schedule(&physical, self.backend.calibration())
        });
        if recorder.is_enabled() {
            recorder.incr("transpile.gates_out", physical.gate_count() as u64);
            recorder.incr("transpile.cx_out", physical.two_qubit_gate_count() as u64);
            recorder.gauge("transpile.depth", sched.depth as f64);
            recorder.gauge("transpile.duration_ns", sched.total_ns);
            recorder.event(
                qbeep_telemetry::EventLevel::Info,
                "transpile.complete",
                &[
                    ("gates_out", physical.gate_count().to_string()),
                    ("depth", sched.depth.to_string()),
                ],
            );
        }
        Ok(TranspiledCircuit::new(
            physical,
            self.backend.name().to_string(),
            needed,
            layout.as_slice().to_vec(),
            routed.final_map,
            sched,
        ))
    }
}

/// Runs one pipeline pass under a child span, feeding its duration into
/// the shared "transpile.pass_ms" histogram. Skips all bookkeeping —
/// including the clock reads — when the recorder is disabled.
fn pass<T>(recorder: &Recorder, name: &str, f: impl FnOnce() -> T) -> T {
    if !recorder.is_enabled() {
        return f();
    }
    let _span = recorder.span(name);
    let started = Instant::now();
    let out = f();
    recorder.observe("transpile.pass_ms", started.elapsed().as_secs_f64() * 1e3);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbeep_circuit::library::{bernstein_vazirani, cat_state, qasmbench_suite};
    use qbeep_device::profiles;
    use qbeep_device::Topology;

    #[test]
    fn bv_transpiles_to_every_bv_fleet_machine() {
        let bv = bernstein_vazirani(&"1011".parse().unwrap());
        for backend in profiles::bv_fleet() {
            let t = Transpiler::new(&backend).transpile(&bv).unwrap();
            assert!(t.circuit().is_basis_only(), "{}", backend.name());
            assert!(t.duration_ns() > 0.0);
            assert_eq!(t.circuit().measured().len(), 4);
            assert_eq!(t.logical_qubits(), 5);
        }
    }

    #[test]
    fn recorded_transpile_matches_plain() {
        let backend = profiles::by_name("fake_jakarta").unwrap();
        let bv = bernstein_vazirani(&"10110".parse().unwrap());
        let plain = Transpiler::new(&backend).transpile(&bv).unwrap();
        let recorder = Recorder::new();
        let recorded = Transpiler::new(&backend)
            .transpile_recorded(&bv, &recorder)
            .unwrap();
        assert_eq!(plain.circuit(), recorded.circuit());
        assert_eq!(plain.duration_ns(), recorded.duration_ns());
        assert_eq!(plain.initial_map(), recorded.initial_map());
    }

    #[test]
    fn recorder_sees_every_pass() {
        let backend = profiles::by_name("fake_lagos").unwrap();
        let bv = bernstein_vazirani(&"1011".parse().unwrap());
        let recorder = Recorder::new();
        let t = Transpiler::new(&backend)
            .transpile_recorded(&bv, &recorder)
            .unwrap();
        let report = recorder.report();
        for path in [
            "transpile",
            "transpile/decompose",
            "transpile/optimize_logical",
            "transpile/layout",
            "transpile/route",
            "transpile/optimize_physical",
            "transpile/schedule",
        ] {
            assert!(report.span(path).is_some(), "missing span {path}");
        }
        assert_eq!(
            report.counters["transpile.gates_in"],
            bv.gate_count() as u64
        );
        assert_eq!(
            report.counters["transpile.gates_out"],
            t.gate_count() as u64
        );
        assert_eq!(
            report.counters["transpile.cx_out"],
            t.circuit().two_qubit_gate_count() as u64
        );
        assert_eq!(report.gauges["transpile.depth"], t.schedule().depth as f64);
        assert_eq!(report.gauges["transpile.duration_ns"], t.duration_ns());
        assert_eq!(report.histograms["transpile.pass_ms"].count, 6);
    }

    #[test]
    fn too_wide_circuit_errors() {
        let backend = profiles::by_name("fake_lima").unwrap();
        let big = cat_state(9);
        let err = Transpiler::new(&backend).transpile(&big).unwrap_err();
        assert_eq!(
            err,
            TranspileError::TooManyQubits {
                needed: 9,
                available: 5
            }
        );
    }

    #[test]
    fn routed_cx_respect_topology() {
        let backend = profiles::by_name("fake_manila").unwrap();
        // cat_state(5) needs a CX chain; on a line topology the greedy
        // layout should avoid SWAPs entirely.
        let t = Transpiler::new(&backend).transpile(&cat_state(5)).unwrap();
        assert!(crate::route::respects_topology(
            t.circuit(),
            backend.topology()
        ));
    }

    #[test]
    fn optimization_reduces_or_preserves_gate_count() {
        let backend = profiles::by_name("fake_jakarta").unwrap();
        let suite = qasmbench_suite();
        for entry in &suite {
            let opt = Transpiler::new(&backend)
                .transpile(entry.circuit())
                .unwrap();
            let raw = Transpiler::new(&backend)
                .with_optimization(false)
                .transpile(entry.circuit())
                .unwrap();
            assert!(
                opt.gate_count() <= raw.gate_count(),
                "{}: optimised {} > raw {}",
                entry.label(),
                opt.gate_count(),
                raw.gate_count()
            );
        }
    }

    #[test]
    fn whole_suite_transpiles_everywhere() {
        let suite = qasmbench_suite();
        for backend in profiles::ibmq_fleet() {
            for entry in &suite {
                let t = Transpiler::new(&backend).transpile(entry.circuit());
                assert!(t.is_ok(), "{} on {}", entry.label(), backend.name());
                let t = t.unwrap();
                assert!(
                    crate::route::respects_topology(t.circuit(), backend.topology()),
                    "{} on {}",
                    entry.label(),
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn duration_scales_with_circuit_size() {
        let backend = profiles::by_name("fake_washington").unwrap();
        let small = Transpiler::new(&backend)
            .transpile(&bernstein_vazirani(&"101".parse().unwrap()))
            .unwrap();
        let large = Transpiler::new(&backend)
            .transpile(&bernstein_vazirani(&"1111111111".parse().unwrap()))
            .unwrap();
        assert!(large.duration_ns() > small.duration_ns());
        assert!(large.cx_count() > small.cx_count());
    }

    #[test]
    fn noise_aware_layout_lowers_expected_error() {
        use crate::layout::Layout;
        use crate::noise_layout::layout_error_score;
        let backend = profiles::by_name("fake_brooklyn").unwrap();
        let bv = bernstein_vazirani(&"1011011".parse().unwrap());
        let plain = Transpiler::new(&backend).transpile(&bv).unwrap();
        let aware = Transpiler::new(&backend)
            .with_layout_strategy(LayoutStrategy::NoiseAware)
            .transpile(&bv)
            .unwrap();
        assert!(aware.circuit().is_basis_only());
        assert!(crate::route::respects_topology(
            aware.circuit(),
            backend.topology()
        ));
        let score = |t: &TranspiledCircuit| {
            layout_error_score(&Layout::new(t.initial_map().to_vec()), &backend)
        };
        assert!(
            score(&aware) <= score(&plain) + 1e-12,
            "{} > {}",
            score(&aware),
            score(&plain)
        );
    }

    #[test]
    fn disconnected_backend_errors() {
        use qbeep_device::{
            Backend, Calibration, GateCalibration, NativeGateSet, QubitCalibration,
        };
        use std::collections::BTreeMap;
        let topo = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let qubits = vec![
            QubitCalibration {
                t1_us: 100.0,
                t2_us: 80.0,
                readout_error: 0.02,
                readout_duration_ns: 1000.0
            };
            4
        ];
        let sq = vec![
            GateCalibration {
                error: 1e-4,
                duration_ns: 35.0
            };
            4
        ];
        let mut cx = BTreeMap::new();
        cx.insert(
            (0u32, 1u32),
            GateCalibration {
                error: 1e-2,
                duration_ns: 300.0,
            },
        );
        cx.insert(
            (2u32, 3u32),
            GateCalibration {
                error: 1e-2,
                duration_ns: 300.0,
            },
        );
        let backend = Backend::new(
            "split",
            NativeGateSet::SuperconductingCx,
            topo,
            Calibration::new(qubits, sq, cx),
        );
        let c = cat_state(3);
        assert_eq!(
            Transpiler::new(&backend).transpile(&c).unwrap_err(),
            TranspileError::DisconnectedBackend
        );
    }
}
