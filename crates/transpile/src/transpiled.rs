//! The transpilation result artefact.

use qbeep_circuit::Circuit;

use crate::schedule::Schedule;

/// A circuit lowered to a specific backend: basis-only physical gates,
/// the qubit maps, and scheduling/timing statistics.
///
/// This is the artefact Q-BEEP's λ model consumes (paper Eq. 2 uses
/// "post-transpilation" gate counts, "accounting for topological
/// constraints and gate decomposition", plus the scheduled end-to-end
/// time).
#[derive(Debug, Clone, PartialEq)]
pub struct TranspiledCircuit {
    physical: Circuit,
    backend_name: String,
    logical_qubits: usize,
    initial_map: Vec<u32>,
    final_map: Vec<u32>,
    schedule: Schedule,
}

impl TranspiledCircuit {
    /// Assembles the artefact (crate-internal; produced by
    /// [`Transpiler::transpile`](crate::Transpiler::transpile)).
    pub(crate) fn new(
        physical: Circuit,
        backend_name: String,
        logical_qubits: usize,
        initial_map: Vec<u32>,
        final_map: Vec<u32>,
        schedule: Schedule,
    ) -> Self {
        debug_assert!(physical.is_basis_only());
        Self {
            physical,
            backend_name,
            logical_qubits,
            initial_map,
            final_map,
            schedule,
        }
    }

    /// The physical basis-only circuit over all backend qubits. Its
    /// measured set points at the physical homes of the logical
    /// measured qubits, in logical classical-bit order — so outcome
    /// bit-strings read back in *logical* order directly.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.physical
    }

    /// Name of the backend this was lowered for.
    #[must_use]
    pub fn backend_name(&self) -> &str {
        &self.backend_name
    }

    /// Number of logical qubits in the source circuit.
    #[must_use]
    pub fn logical_qubits(&self) -> usize {
        self.logical_qubits
    }

    /// The initial logical→physical placement.
    #[must_use]
    pub fn initial_map(&self) -> &[u32] {
        &self.initial_map
    }

    /// The final logical→physical map after routing SWAPs.
    #[must_use]
    pub fn final_map(&self) -> &[u32] {
        &self.final_map
    }

    /// End-to-end scheduled duration in ns, including readout — the
    /// `t_circuit` of the λ model.
    #[must_use]
    pub fn duration_ns(&self) -> f64 {
        self.schedule.total_ns
    }

    /// The full timing breakdown.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Total transpiled gate count.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.physical.gate_count()
    }

    /// Transpiled CX count (routing overhead included).
    #[must_use]
    pub fn cx_count(&self) -> usize {
        self.physical.two_qubit_gate_count()
    }
}
