//! Initial logical→physical qubit placement.

use qbeep_circuit::Circuit;
use qbeep_device::Topology;

/// A logical→physical qubit assignment: `physical[l]` is the physical
/// qubit holding logical qubit `l`.
///
/// # Example
///
/// ```
/// use qbeep_transpile::layout::Layout;
///
/// let layout = Layout::trivial(3);
/// assert_eq!(layout.physical(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    physical: Vec<u32>,
}

impl Layout {
    /// Builds a layout from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment contains duplicates.
    #[must_use]
    pub fn new(physical: Vec<u32>) -> Self {
        for (i, a) in physical.iter().enumerate() {
            assert!(
                !physical[i + 1..].contains(a),
                "physical qubit {a} assigned to two logical qubits"
            );
        }
        Self { physical }
    }

    /// The identity layout on `n` qubits.
    #[must_use]
    pub fn trivial(n: usize) -> Self {
        Self {
            physical: (0..n as u32).collect(),
        }
    }

    /// The physical qubit holding logical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn physical(&self, l: u32) -> u32 {
        self.physical[l as usize]
    }

    /// The full assignment vector.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.physical
    }

    /// Number of placed logical qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.physical.len()
    }

    /// Whether no qubits are placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.physical.is_empty()
    }
}

/// Chooses an initial placement by interaction-greedy BFS: logical
/// qubits are ordered by how many two-qubit interactions they carry;
/// the busiest is placed on the highest-degree physical qubit, and each
/// subsequent logical qubit is placed on a free physical qubit adjacent
/// to (or failing that, closest to) its already-placed interaction
/// partners.
///
/// This is a lightweight stand-in for SABRE-style layout: it keeps
/// chatty logical pairs physically close, which is all the routing
/// stage needs to keep SWAP counts realistic.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the topology has.
#[must_use]
pub fn greedy_layout(circuit: &Circuit, topology: &Topology) -> Layout {
    let n_logical = circuit.num_qubits();
    let n_physical = topology.num_qubits();
    assert!(
        n_logical <= n_physical,
        "{n_logical} logical qubits exceed {n_physical} physical"
    );

    // Logical interaction weights.
    let mut weight = vec![vec![0usize; n_logical]; n_logical];
    let mut activity = vec![0usize; n_logical];
    for inst in circuit.instructions() {
        let qs = inst.qubits();
        if qs.len() >= 2 {
            for i in 0..qs.len() {
                for j in i + 1..qs.len() {
                    weight[qs[i] as usize][qs[j] as usize] += 1;
                    weight[qs[j] as usize][qs[i] as usize] += 1;
                }
            }
        }
        for &q in qs {
            activity[q as usize] += 1;
        }
    }

    // Order logical qubits by total interaction weight (desc), then
    // activity, then index — deterministic.
    let mut order: Vec<usize> = (0..n_logical).collect();
    order.sort_by_key(|&l| {
        let w: usize = weight[l].iter().sum();
        (std::cmp::Reverse(w), std::cmp::Reverse(activity[l]), l)
    });

    let mut assignment: Vec<Option<u32>> = vec![None; n_logical];
    let mut used = vec![false; n_physical];

    for &l in &order {
        // Physical candidates scored by summed distance to already-placed
        // partners (weighted), fewer hops better.
        let placed_partners: Vec<(u32, usize)> = (0..n_logical)
            .filter(|&m| weight[l][m] > 0)
            .filter_map(|m| assignment[m].map(|p| (p, weight[l][m])))
            .collect();
        let mut best: Option<(f64, u32)> = None;
        for p in 0..n_physical as u32 {
            if used[p as usize] {
                continue;
            }
            let score = if placed_partners.is_empty() {
                // No placed partners: prefer high-degree hubs.
                -(topology.degree(p) as f64)
            } else {
                placed_partners
                    .iter()
                    .map(|&(q, w)| {
                        let d = topology.distance(p, q).unwrap_or(n_physical) as f64;
                        d * w as f64
                    })
                    .sum()
            };
            if best.is_none_or(|(s, bp)| score < s || (score == s && p < bp)) {
                best = Some((score, p));
            }
        }
        let (_, p) = best.expect("free physical qubit must exist");
        assignment[l] = Some(p);
        used[p as usize] = true;
    }

    Layout::new(
        assignment
            .into_iter()
            .map(|a| a.expect("all placed"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbeep_circuit::Circuit;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(4);
        assert_eq!(l.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(l.len(), 4);
    }

    #[test]
    #[should_panic(expected = "assigned to two")]
    fn duplicate_assignment_panics() {
        let _ = Layout::new(vec![0, 1, 0]);
    }

    #[test]
    fn greedy_layout_is_injective_and_total() {
        let mut c = Circuit::new(4, "t");
        c.cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3);
        let topo = Topology::heavy_hex(2, 8);
        let layout = greedy_layout(&c, &topo);
        assert_eq!(layout.len(), 4);
        let mut seen: Vec<u32> = layout.as_slice().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn chatty_pairs_are_placed_adjacent() {
        let mut c = Circuit::new(2, "t");
        for _ in 0..5 {
            c.cx(0, 1);
        }
        let topo = Topology::linear(6);
        let layout = greedy_layout(&c, &topo);
        assert!(topo.has_edge(layout.physical(0), layout.physical(1)));
    }

    #[test]
    fn star_center_gets_hub() {
        // Logical star 0-{1,2,3} on a T topology should map logical 0 to
        // the degree-3 hub (physical qubit 1).
        let mut c = Circuit::new(4, "t");
        c.cx(0, 1).cx(0, 2).cx(0, 3);
        let topo = Topology::t_shape();
        let layout = greedy_layout(&c, &topo);
        assert_eq!(layout.physical(0), 1);
    }

    #[test]
    fn deterministic() {
        let mut c = Circuit::new(3, "t");
        c.cx(0, 1).cx(1, 2);
        let topo = Topology::grid(3, 3);
        assert_eq!(greedy_layout(&c, &topo), greedy_layout(&c, &topo));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_small_topology_panics() {
        let c = Circuit::new(6, "t");
        let topo = Topology::linear(3);
        let _ = greedy_layout(&c, &topo);
    }
}
