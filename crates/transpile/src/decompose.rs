//! Lowering arbitrary gates to the IBM native basis `{rz, sx, x, cx}`.
//!
//! Single-qubit gates funnel through the ZXZXZ identity
//! `U(θ, φ, λ) ≅ RZ(φ + π) · SX · RZ(θ + π) · SX · RZ(λ)` (global phase
//! dropped — it is unobservable in measurement statistics). Multi-qubit
//! gates use the textbook CX-based constructions.

use std::f64::consts::PI;

use qbeep_circuit::{Circuit, Gate, Instruction};

/// Expresses a single-qubit gate as `U(θ, φ, λ)` angles, or `None` for
/// gates that are already basis gates / pure-diagonal shortcuts.
fn as_u_angles(gate: &Gate) -> Option<(f64, f64, f64)> {
    match *gate {
        Gate::H => Some((PI / 2.0, 0.0, PI)),
        Gate::Y => Some((PI, PI / 2.0, PI / 2.0)),
        Gate::RX(t) => Some((t, -PI / 2.0, PI / 2.0)),
        Gate::RY(t) => Some((t, 0.0, 0.0)),
        Gate::SXdg => Some((-PI / 2.0, -PI / 2.0, PI / 2.0)),
        Gate::U(t, p, l) => Some((t, p, l)),
        _ => None,
    }
}

/// Emits the ZXZXZ expansion of `U(θ, φ, λ)` on `q` into `out`.
fn push_u(out: &mut Vec<Instruction>, q: u32, theta: f64, phi: f64, lambda: f64) {
    out.push(Instruction::new(Gate::RZ(lambda), vec![q]));
    out.push(Instruction::new(Gate::SX, vec![q]));
    out.push(Instruction::new(Gate::RZ(theta + PI), vec![q]));
    out.push(Instruction::new(Gate::SX, vec![q]));
    out.push(Instruction::new(Gate::RZ(phi + PI), vec![q]));
}

/// Recursively lowers one instruction to basis gates, appending to
/// `out`.
fn lower(inst: &Instruction, out: &mut Vec<Instruction>) {
    let qs = inst.qubits();
    let gate = *inst.gate();
    // Already native.
    if gate.is_basis_gate() {
        if !matches!(gate, Gate::I) {
            out.push(inst.clone());
        }
        return;
    }
    // Single-qubit diagonal shortcuts: pure RZ rotations.
    let rz_angle = match gate {
        Gate::Z => Some(PI),
        Gate::S => Some(PI / 2.0),
        Gate::Sdg => Some(-PI / 2.0),
        Gate::T => Some(PI / 4.0),
        Gate::Tdg => Some(-PI / 4.0),
        Gate::P(t) | Gate::RZ(t) => Some(t),
        _ => None,
    };
    if let Some(t) = rz_angle {
        out.push(Instruction::new(Gate::RZ(t), vec![qs[0]]));
        return;
    }
    if let Some((t, p, l)) = as_u_angles(&gate) {
        push_u(out, qs[0], t, p, l);
        return;
    }

    // Multi-qubit constructions, emitted as mixed-level gates and
    // re-lowered recursively.
    let mut sub: Vec<Instruction> = Vec::new();
    let push =
        |v: &mut Vec<Instruction>, g: Gate, q: &[u32]| v.push(Instruction::new(g, q.to_vec()));
    match gate {
        Gate::CZ => {
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::H, &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::H, &[t]);
        }
        Gate::CY => {
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::Sdg, &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::S, &[t]);
        }
        Gate::CH => {
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::S, &[t]);
            push(&mut sub, Gate::H, &[t]);
            push(&mut sub, Gate::T, &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::Tdg, &[t]);
            push(&mut sub, Gate::H, &[t]);
            push(&mut sub, Gate::Sdg, &[t]);
        }
        Gate::CP(theta) => {
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::RZ(theta / 2.0), &[c]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::RZ(-theta / 2.0), &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::RZ(theta / 2.0), &[t]);
        }
        Gate::CRZ(theta) => {
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::RZ(theta / 2.0), &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::RZ(-theta / 2.0), &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
        }
        Gate::CRY(theta) => {
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::RY(theta / 2.0), &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
            push(&mut sub, Gate::RY(-theta / 2.0), &[t]);
            push(&mut sub, Gate::CX, &[c, t]);
        }
        Gate::CRX(theta) => {
            // X = H Z H ⇒ CRX = (I⊗H) · CRZ · (I⊗H).
            let (c, t) = (qs[0], qs[1]);
            push(&mut sub, Gate::H, &[t]);
            push(&mut sub, Gate::CRZ(theta), &[c, t]);
            push(&mut sub, Gate::H, &[t]);
        }
        Gate::RZZ(theta) => {
            let (a, b) = (qs[0], qs[1]);
            push(&mut sub, Gate::CX, &[a, b]);
            push(&mut sub, Gate::RZ(theta), &[b]);
            push(&mut sub, Gate::CX, &[a, b]);
        }
        Gate::RXX(theta) => {
            let (a, b) = (qs[0], qs[1]);
            push(&mut sub, Gate::H, &[a]);
            push(&mut sub, Gate::H, &[b]);
            push(&mut sub, Gate::RZZ(theta), &[a, b]);
            push(&mut sub, Gate::H, &[a]);
            push(&mut sub, Gate::H, &[b]);
        }
        Gate::RYY(theta) => {
            let (a, b) = (qs[0], qs[1]);
            push(&mut sub, Gate::RX(PI / 2.0), &[a]);
            push(&mut sub, Gate::RX(PI / 2.0), &[b]);
            push(&mut sub, Gate::RZZ(theta), &[a, b]);
            push(&mut sub, Gate::RX(-PI / 2.0), &[a]);
            push(&mut sub, Gate::RX(-PI / 2.0), &[b]);
        }
        Gate::SWAP => {
            let (a, b) = (qs[0], qs[1]);
            push(&mut sub, Gate::CX, &[a, b]);
            push(&mut sub, Gate::CX, &[b, a]);
            push(&mut sub, Gate::CX, &[a, b]);
        }
        Gate::CCX => {
            // Standard 6-CX Toffoli.
            let (a, b, t) = (qs[0], qs[1], qs[2]);
            push(&mut sub, Gate::H, &[t]);
            push(&mut sub, Gate::CX, &[b, t]);
            push(&mut sub, Gate::Tdg, &[t]);
            push(&mut sub, Gate::CX, &[a, t]);
            push(&mut sub, Gate::T, &[t]);
            push(&mut sub, Gate::CX, &[b, t]);
            push(&mut sub, Gate::Tdg, &[t]);
            push(&mut sub, Gate::CX, &[a, t]);
            push(&mut sub, Gate::T, &[b]);
            push(&mut sub, Gate::T, &[t]);
            push(&mut sub, Gate::H, &[t]);
            push(&mut sub, Gate::CX, &[a, b]);
            push(&mut sub, Gate::T, &[a]);
            push(&mut sub, Gate::Tdg, &[b]);
            push(&mut sub, Gate::CX, &[a, b]);
        }
        Gate::CSWAP => {
            let (c, a, b) = (qs[0], qs[1], qs[2]);
            push(&mut sub, Gate::CX, &[b, a]);
            push(&mut sub, Gate::CCX, &[c, a, b]);
            push(&mut sub, Gate::CX, &[b, a]);
        }
        other => unreachable!("gate {other} not covered by decomposition"),
    }
    for s in &sub {
        lower(s, out);
    }
}

/// Lowers every instruction of `circuit` to the `{rz, sx, x, cx}`
/// basis, preserving qubit count, name and measured set.
///
/// The decomposition is exact up to global phase, which measurement
/// statistics cannot observe.
///
/// # Example
///
/// ```
/// use qbeep_circuit::Circuit;
/// use qbeep_transpile::decompose::to_basis;
///
/// let mut c = Circuit::new(3, "toffoli");
/// c.ccx(0, 1, 2);
/// let lowered = to_basis(&c);
/// assert!(lowered.is_basis_only());
/// assert_eq!(lowered.gate_histogram()["cx"], 6);
/// ```
#[must_use]
pub fn to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits(), circuit.name().to_string());
    out.set_measured(circuit.measured().to_vec());
    let mut insts = Vec::new();
    for inst in circuit.instructions() {
        lower(inst, &mut insts);
    }
    for i in insts {
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_single(gate: Gate, arity_qubits: &[u32], n: usize) -> Circuit {
        let mut c = Circuit::new(n, "t");
        c.apply(gate, arity_qubits);
        to_basis(&c)
    }

    #[test]
    fn basis_gates_pass_through() {
        let mut c = Circuit::new(2, "b");
        c.rz(0.3, 0).sx(0).x(1).cx(0, 1);
        let out = to_basis(&c);
        assert_eq!(out.instructions(), c.instructions());
    }

    #[test]
    fn identity_is_dropped() {
        let out = lower_single(Gate::I, &[0], 1);
        assert_eq!(out.gate_count(), 0);
    }

    #[test]
    fn diagonal_gates_become_single_rz() {
        for g in [
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::P(0.7),
        ] {
            let out = lower_single(g, &[0], 1);
            assert_eq!(out.gate_count(), 1, "{g}");
            assert!(matches!(out.instructions()[0].gate(), Gate::RZ(_)));
        }
    }

    #[test]
    fn h_becomes_zxzxz() {
        let out = lower_single(Gate::H, &[0], 1);
        assert!(out.is_basis_only());
        assert_eq!(out.gate_histogram()["sx"], 2);
        assert_eq!(out.gate_histogram()["rz"], 3);
    }

    #[test]
    fn every_alphabet_gate_lowers_to_basis() {
        let one_q: Vec<Gate> = vec![
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::SXdg,
            Gate::RX(0.4),
            Gate::RY(0.4),
            Gate::RZ(0.4),
            Gate::P(0.4),
            Gate::U(0.1, 0.2, 0.3),
        ];
        for g in one_q {
            assert!(lower_single(g, &[0], 1).is_basis_only(), "{g}");
        }
        let two_q: Vec<Gate> = vec![
            Gate::CX,
            Gate::CY,
            Gate::CZ,
            Gate::CH,
            Gate::CP(0.4),
            Gate::CRX(0.4),
            Gate::CRY(0.4),
            Gate::CRZ(0.4),
            Gate::RXX(0.4),
            Gate::RYY(0.4),
            Gate::RZZ(0.4),
            Gate::SWAP,
        ];
        for g in two_q {
            assert!(lower_single(g, &[0, 1], 2).is_basis_only(), "{g}");
        }
        for g in [Gate::CCX, Gate::CSWAP] {
            assert!(lower_single(g, &[0, 1, 2], 3).is_basis_only(), "{g}");
        }
    }

    #[test]
    fn swap_costs_three_cx() {
        let out = lower_single(Gate::SWAP, &[0, 1], 2);
        assert_eq!(out.gate_histogram()["cx"], 3);
        assert_eq!(out.gate_count(), 3);
    }

    #[test]
    fn cz_costs_one_cx() {
        let out = lower_single(Gate::CZ, &[0, 1], 2);
        assert_eq!(out.gate_histogram()["cx"], 1);
    }

    #[test]
    fn ccx_costs_six_cx() {
        let out = lower_single(Gate::CCX, &[0, 1, 2], 3);
        assert_eq!(out.gate_histogram()["cx"], 6);
    }

    #[test]
    fn cswap_costs_eight_cx() {
        // 2 framing CX + 6 from the inner Toffoli.
        let out = lower_single(Gate::CSWAP, &[0, 1, 2], 3);
        assert_eq!(out.gate_histogram()["cx"], 8);
    }

    #[test]
    fn measured_set_is_preserved() {
        let mut c = Circuit::new(3, "m");
        c.ccx(0, 1, 2);
        c.set_measured(vec![2]);
        let out = to_basis(&c);
        assert_eq!(out.measured(), &[2]);
    }

    #[test]
    fn rzz_structure() {
        let out = lower_single(Gate::RZZ(0.9), &[0, 1], 2);
        assert_eq!(out.gate_histogram()["cx"], 2);
        assert_eq!(out.gate_histogram()["rz"], 1);
    }
}
