//! ASAP scheduling against calibration durations.
//!
//! Produces the end-to-end circuit time `t_circuit` ("from the pulse
//! scheduler level", paper Eq. 2) that drives the decoherence terms of
//! the λ model.

use qbeep_circuit::{Circuit, Gate};
use qbeep_device::Calibration;

/// Timing summary of a scheduled physical circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// End-to-end duration including the final readout, in ns.
    pub total_ns: f64,
    /// Duration up to (excluding) readout, in ns.
    pub compute_ns: f64,
    /// The readout duration applied at the end, in ns.
    pub readout_ns: f64,
    /// Critical-path gate count (scheduling depth).
    pub depth: usize,
}

/// ASAP-schedules a basis-only physical circuit against `calibration`:
/// each gate starts as soon as all its operand qubits are free, and
/// runs for the calibrated duration of its gate type (single-qubit
/// durations per qubit, CX durations per edge; RZ gates are virtual —
/// zero duration — matching IBM's frame-change implementation).
///
/// The end-to-end time adds the longest readout among measured qubits.
///
/// # Panics
///
/// Panics if the circuit contains non-basis gates, touches a qubit
/// outside the calibration, or uses a CX edge without calibration.
#[must_use]
pub fn schedule(circuit: &Circuit, calibration: &Calibration) -> Schedule {
    assert!(
        circuit.num_qubits() <= calibration.num_qubits(),
        "circuit uses {} qubits, calibration covers {}",
        circuit.num_qubits(),
        calibration.num_qubits()
    );
    let mut free_at = vec![0.0f64; circuit.num_qubits()];
    let mut depth_at = vec![0usize; circuit.num_qubits()];
    let mut depth = 0usize;
    for inst in circuit.instructions() {
        let qs = inst.qubits();
        let duration = match inst.gate() {
            // RZ is a virtual frame change on IBM hardware: free.
            Gate::RZ(_) => 0.0,
            Gate::SX | Gate::X | Gate::I => calibration.sq_gate(qs[0]).duration_ns,
            Gate::CX => {
                calibration
                    .cx_gate(qs[0], qs[1])
                    .unwrap_or_else(|| panic!("no CX calibration for edge ({}, {})", qs[0], qs[1]))
                    .duration_ns
            }
            g => panic!("schedule expects basis gates, found {g}"),
        };
        let start = qs
            .iter()
            .map(|&q| free_at[q as usize])
            .fold(0.0f64, f64::max);
        let layer = qs.iter().map(|&q| depth_at[q as usize]).max().unwrap_or(0) + 1;
        for &q in qs {
            free_at[q as usize] = start + duration;
            depth_at[q as usize] = layer;
        }
        depth = depth.max(layer);
    }
    let compute_ns = free_at.iter().copied().fold(0.0f64, f64::max);
    let readout_ns = circuit
        .measured()
        .iter()
        .map(|&q| calibration.qubit(q).readout_duration_ns)
        .fold(0.0f64, f64::max);
    Schedule {
        total_ns: compute_ns + readout_ns,
        compute_ns,
        readout_ns,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbeep_device::{GateCalibration, QubitCalibration};
    use std::collections::BTreeMap;

    fn cal(n: usize) -> Calibration {
        let qubits = vec![
            QubitCalibration {
                t1_us: 100.0,
                t2_us: 80.0,
                readout_error: 0.02,
                readout_duration_ns: 1000.0
            };
            n
        ];
        let sq = vec![
            GateCalibration {
                error: 1e-4,
                duration_ns: 40.0
            };
            n
        ];
        let mut cx = BTreeMap::new();
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                cx.insert(
                    (a, b),
                    GateCalibration {
                        error: 1e-2,
                        duration_ns: 300.0,
                    },
                );
            }
        }
        Calibration::new(qubits, sq, cx)
    }

    #[test]
    fn serial_durations_add() {
        let mut c = Circuit::new(1, "t");
        c.sx(0).sx(0).x(0);
        let s = schedule(&c, &cal(1));
        assert!((s.compute_ns - 120.0).abs() < 1e-9);
        assert!((s.total_ns - 1120.0).abs() < 1e-9);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn parallel_gates_share_time() {
        let mut c = Circuit::new(2, "t");
        c.sx(0).sx(1);
        let s = schedule(&c, &cal(2));
        assert!((s.compute_ns - 40.0).abs() < 1e-9);
        assert_eq!(s.depth, 1);
    }

    #[test]
    fn rz_is_free() {
        let mut c = Circuit::new(1, "t");
        c.rz(1.0, 0).rz(2.0, 0);
        let s = schedule(&c, &cal(1));
        assert_eq!(s.compute_ns, 0.0);
        assert!((s.total_ns - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cx_uses_edge_duration_and_blocks_both() {
        let mut c = Circuit::new(2, "t");
        c.cx(0, 1).sx(0);
        let s = schedule(&c, &cal(2));
        assert!((s.compute_ns - 340.0).abs() < 1e-9);
    }

    #[test]
    fn readout_is_max_over_measured() {
        let mut c = Circuit::new(3, "t");
        c.x(0);
        c.set_measured(vec![0]);
        let s = schedule(&c, &cal(3));
        assert!((s.readout_ns - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "basis gates")]
    fn non_basis_panics() {
        let mut c = Circuit::new(1, "t");
        c.h(0);
        let _ = schedule(&c, &cal(1));
    }

    #[test]
    fn critical_path_dominates() {
        // q0: three sx (120ns); q1: one sx (40ns) in parallel.
        let mut c = Circuit::new(2, "t");
        c.sx(0).sx(1).sx(0).sx(0);
        let s = schedule(&c, &cal(2));
        assert!((s.compute_ns - 120.0).abs() < 1e-9);
    }
}
