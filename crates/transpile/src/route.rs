//! SWAP routing: making every two-qubit gate act on coupled qubits.

use qbeep_circuit::{Circuit, Gate};
use qbeep_device::Topology;

use crate::layout::Layout;

/// The result of routing: the physical circuit (every CX on a coupled
/// edge, SWAPs already expanded to CX triples) and the final
/// logical→physical map after all routing SWAPs.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed {
    /// The physical circuit over all backend qubits.
    pub circuit: Circuit,
    /// `final_map[l]` = physical qubit holding logical `l` at the end.
    pub final_map: Vec<u32>,
}

/// Routes `circuit` (logical indices, basis gates only) onto `topology`
/// starting from `layout`, inserting SWAPs (as CX triples) along
/// shortest paths whenever a CX spans uncoupled qubits.
///
/// The measured set of the output circuit is the *final* physical
/// location of each logical measured qubit.
///
/// # Panics
///
/// Panics if the circuit contains non-basis multi-qubit gates, the
/// layout size differs from the circuit, or the topology is
/// disconnected along a needed path.
#[must_use]
pub fn route(circuit: &Circuit, topology: &Topology, layout: &Layout) -> Routed {
    assert_eq!(layout.len(), circuit.num_qubits(), "layout size mismatch");
    let n_phys = topology.num_qubits();
    // log2phys[l] and phys2log[p] (None = unoccupied).
    let mut log2phys: Vec<u32> = layout.as_slice().to_vec();
    let mut phys2log: Vec<Option<u32>> = vec![None; n_phys];
    for (l, &p) in log2phys.iter().enumerate() {
        assert!(
            (p as usize) < n_phys,
            "layout places logical {l} out of range"
        );
        phys2log[p as usize] = Some(l as u32);
    }

    let mut out = Circuit::new(n_phys, circuit.name().to_string());

    let emit_swap = |out: &mut Circuit,
                     log2phys: &mut Vec<u32>,
                     phys2log: &mut Vec<Option<u32>>,
                     a: u32,
                     b: u32| {
        // Physical SWAP = 3 CX on the coupled edge.
        out.cx(a, b).cx(b, a).cx(a, b);
        let la = phys2log[a as usize];
        let lb = phys2log[b as usize];
        if let Some(l) = la {
            log2phys[l as usize] = b;
        }
        if let Some(l) = lb {
            log2phys[l as usize] = a;
        }
        phys2log.swap(a as usize, b as usize);
    };

    for inst in circuit.instructions() {
        match inst.gate() {
            Gate::CX => {
                let (la, lb) = (inst.qubits()[0], inst.qubits()[1]);
                // Walk logical a's qubit along the shortest path towards
                // logical b until adjacent.
                loop {
                    let (pa, pb) = (log2phys[la as usize], log2phys[lb as usize]);
                    if topology.has_edge(pa, pb) {
                        out.cx(pa, pb);
                        break;
                    }
                    let path = topology
                        .shortest_path(pa, pb)
                        .expect("routing requires a connected topology");
                    emit_swap(&mut out, &mut log2phys, &mut phys2log, path[0], path[1]);
                }
            }
            g if g.arity() == 1 => {
                let p = log2phys[inst.qubits()[0] as usize];
                out.apply(*g, &[p]);
            }
            g => panic!("route expects basis gates, found {g}"),
        }
    }

    let measured: Vec<u32> = circuit
        .measured()
        .iter()
        .map(|&l| log2phys[l as usize])
        .collect();
    out.set_measured(measured);
    Routed {
        circuit: out,
        final_map: log2phys,
    }
}

/// Convenience check used by tests and debug assertions: every CX in
/// `circuit` acts on a coupled pair of `topology`.
#[must_use]
pub fn respects_topology(circuit: &Circuit, topology: &Topology) -> bool {
    circuit.instructions().iter().all(|inst| {
        if inst.qubits().len() == 2 {
            topology.has_edge(inst.qubits()[0], inst.qubits()[1])
        } else {
            true
        }
    })
}

/// Counts the CX gates `route` would add for `circuit` under `layout` —
/// exposed for layout-quality experiments.
#[must_use]
pub fn routing_overhead(circuit: &Circuit, topology: &Topology, layout: &Layout) -> usize {
    let routed = route(circuit, topology, layout);
    routed.circuit.two_qubit_gate_count() - circuit.two_qubit_gate_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn adjacent_cx_passes_through() {
        let mut c = Circuit::new(2, "t");
        c.cx(0, 1);
        let topo = Topology::linear(3);
        let routed = route(&c, &topo, &Layout::trivial(2));
        assert_eq!(routed.circuit.two_qubit_gate_count(), 1);
        assert!(respects_topology(&routed.circuit, &topo));
        assert_eq!(routed.final_map, vec![0, 1]);
    }

    #[test]
    fn distant_cx_inserts_swaps() {
        let mut c = Circuit::new(3, "t");
        c.cx(0, 2); // distance 2 on a line
        let topo = Topology::linear(3);
        let routed = route(&c, &topo, &Layout::trivial(3));
        // One SWAP (3 CX) + the CX itself.
        assert_eq!(routed.circuit.two_qubit_gate_count(), 4);
        assert!(respects_topology(&routed.circuit, &topo));
        // Logical 0 moved to physical 1.
        assert_eq!(routed.final_map[0], 1);
    }

    #[test]
    fn measured_follows_moves() {
        let mut c = Circuit::new(3, "t");
        c.cx(0, 2);
        let topo = Topology::linear(3);
        let routed = route(&c, &topo, &Layout::trivial(3));
        // Logical qubits 0,1,2 are measured; their physical homes after
        // one swap of (0,1) are 1,0,2.
        assert_eq!(routed.circuit.measured(), &[1, 0, 2]);
    }

    #[test]
    fn single_qubit_gates_are_relabelled() {
        let mut c = Circuit::new(2, "t");
        c.x(1);
        let topo = Topology::linear(4);
        let layout = Layout::new(vec![3, 2]);
        let routed = route(&c, &topo, &layout);
        assert_eq!(routed.circuit.instructions()[0].qubits(), &[2]);
    }

    #[test]
    fn long_chain_routes_correctly() {
        let mut c = Circuit::new(5, "t");
        c.cx(0, 4).cx(1, 3).cx(0, 2);
        let topo = Topology::linear(5);
        let routed = route(&c, &topo, &Layout::trivial(5));
        assert!(respects_topology(&routed.circuit, &topo));
        // All 5 logical qubits still occupy distinct physical ones.
        let mut map = routed.final_map.clone();
        map.sort_unstable();
        map.dedup();
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn routing_overhead_zero_when_adjacent() {
        let mut c = Circuit::new(2, "t");
        c.cx(0, 1).cx(1, 0);
        let topo = Topology::linear(2);
        assert_eq!(routing_overhead(&c, &topo, &Layout::trivial(2)), 0);
    }

    #[test]
    #[should_panic(expected = "basis gates")]
    fn non_basis_gate_panics() {
        let mut c = Circuit::new(3, "t");
        c.ccx(0, 1, 2);
        let topo = Topology::linear(3);
        let _ = route(&c, &topo, &Layout::trivial(3));
    }

    #[test]
    fn full_topology_never_swaps() {
        let mut c = Circuit::new(4, "t");
        c.cx(0, 3).cx(1, 2).cx(0, 2);
        let topo = Topology::full(4);
        assert_eq!(routing_overhead(&c, &topo, &Layout::trivial(4)), 0);
    }
}
