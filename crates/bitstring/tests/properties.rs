//! Property-based tests of the bitstring crate's normalization and
//! shard/merge invariants.

use proptest::prelude::*;
use qbeep_bitstring::{
    accumulate_masses, merge_mass_partials, BitString, Distribution, HammingSpectrum,
};

/// Strategy: a width plus a non-empty weighted outcome list over it.
fn arb_weighted() -> impl Strategy<Value = (usize, Vec<(u64, f64)>)> {
    (2usize..=12).prop_flat_map(|width| {
        let items = proptest::collection::vec((0u64..(1 << width), 1e-6f64..100.0), 1..20);
        items.prop_map(move |v| (width, v))
    })
}

fn to_distribution(width: usize, items: &[(u64, f64)]) -> Distribution {
    Distribution::from_probs(
        width,
        items
            .iter()
            .map(|&(v, w)| (BitString::from_value(u128::from(v), width), w)),
    )
}

proptest! {
    #[test]
    fn from_probs_normalises_to_unit_mass((width, items) in arb_weighted()) {
        let dist = to_distribution(width, &items);
        prop_assert!((dist.total_mass() - 1.0).abs() < 1e-12);
        for (_, p) in dist.iter() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
        prop_assert!(dist.support_size() <= items.len());
    }

    #[test]
    fn try_from_masses_normalises_or_reports_zero(
        width in 2usize..=12,
        masses in proptest::collection::vec(0.0f64..10.0, 1..8),
    ) {
        let masses: Vec<f64> = masses.into_iter().take(width + 1).collect();
        let reference = BitString::zeros(width);
        let total: f64 = masses.iter().sum();
        match HammingSpectrum::try_from_masses(reference, &masses) {
            Ok(spec) => {
                prop_assert!(total > 0.0);
                let sum: f64 = spec.masses().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-12);
                prop_assert!(spec.masses().iter().all(|m| *m >= 0.0));
            }
            Err(_) => prop_assert!(total <= 0.0),
        }
    }

    #[test]
    fn sharded_spectrum_matches_single_pass(
        (width, items) in arb_weighted(),
        split_seed in any::<u64>(),
    ) {
        let dist = to_distribution(width, &items);
        let reference = BitString::from_value(u128::from(split_seed), width);
        let whole = dist.hamming_spectrum(&reference);

        // Partition the support into up to 4 shards by a seeded hash
        // and bucket each shard independently.
        let support: Vec<(BitString, f64)> = dist.iter().map(|(s, p)| (*s, p)).collect();
        let mut shards: Vec<Vec<(BitString, f64)>> = vec![Vec::new(); 4];
        for (i, &(s, p)) in support.iter().enumerate() {
            let shard = (split_seed.rotate_left(i as u32) % 4) as usize;
            shards[shard].push((s, p));
        }
        let partials: Vec<Vec<f64>> = shards
            .iter()
            .map(|shard| accumulate_masses(&reference, shard.iter().map(|(s, p)| (s, *p))))
            .collect();
        let merged = HammingSpectrum::from_partials(reference, &partials).unwrap();
        for k in 0..=width {
            prop_assert!(
                (merged.mass(k) - whole.mass(k)).abs() < 1e-12,
                "bucket {} diverged: {} vs {}", k, merged.mass(k), whole.mass(k)
            );
        }
    }

    #[test]
    fn merge_is_order_insensitive(
        width in 2usize..=10,
        partials in proptest::collection::vec(
            proptest::collection::vec(0.0f64..5.0, 0..6), 0..5,
        ),
    ) {
        let partials: Vec<Vec<f64>> = partials
            .into_iter()
            .map(|p| p.into_iter().take(width + 1).collect())
            .collect();
        let forward = merge_mass_partials(width, &partials);
        let mut reversed = partials.clone();
        reversed.reverse();
        let backward = merge_mass_partials(width, &reversed);
        prop_assert_eq!(forward.len(), width + 1);
        for (a, b) in forward.iter().zip(&backward) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
