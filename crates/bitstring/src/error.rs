//! Error types for bit-string parsing and distribution construction.

use std::error::Error;
use std::fmt;

/// Error returned when a distribution or spectrum cannot be normalised
/// because the supplied weights sum to zero (empty input, or every
/// weight zero). Callers on the mitigation path map this to their own
/// empty-counts error instead of dividing by zero and spreading NaNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroMassError;

impl fmt::Display for ZeroMassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot normalise a distribution with zero total mass")
    }
}

impl Error for ZeroMassError {}

/// Error returned when parsing a [`BitString`](crate::BitString) from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBitStringError {
    /// The input string was empty.
    Empty,
    /// The input contained a character other than `'0'` or `'1'`.
    InvalidChar {
        /// The offending character.
        ch: char,
        /// Its byte index in the input.
        index: usize,
    },
    /// The input exceeded [`MAX_BITS`](crate::MAX_BITS) characters.
    TooLong {
        /// Length of the input.
        len: usize,
        /// The maximum supported length.
        max: usize,
    },
}

impl fmt::Display for ParseBitStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "empty bit-string"),
            Self::InvalidChar { ch, index } => {
                write!(
                    f,
                    "invalid character {ch:?} at index {index}, expected '0' or '1'"
                )
            }
            Self::TooLong { len, max } => {
                write!(f, "bit-string of length {len} exceeds the maximum of {max}")
            }
        }
    }
}

impl Error for ParseBitStringError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(ParseBitStringError::Empty.to_string(), "empty bit-string");
        let e = ParseBitStringError::InvalidChar { ch: 'q', index: 3 };
        assert!(e.to_string().contains("'q'"));
        let e = ParseBitStringError::TooLong { len: 200, max: 128 };
        assert!(e.to_string().contains("200"));
    }
}
