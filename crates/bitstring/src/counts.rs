//! Measurement-count tables: the raw artefact of running a circuit.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitString, Distribution};

/// A table of observed bit-strings and how many shots produced each — the
/// classical readout of `N` repeated circuit inductions.
///
/// This mirrors the `{bit-string: count}` dictionaries returned by IBMQ
/// backends (paper §2.2). All entries must share the width fixed at
/// construction.
///
/// # Example
///
/// ```
/// use qbeep_bitstring::{BitString, Counts};
///
/// let mut counts = Counts::new(3);
/// counts.record(BitString::from_value(0b101, 3), 40);
/// counts.record(BitString::from_value(0b101, 3), 10);
/// counts.record(BitString::from_value(0b000, 3), 50);
///
/// assert_eq!(counts.total(), 100);
/// assert_eq!(counts.get(&BitString::from_value(0b101, 3)), 50);
/// assert_eq!(counts.distinct(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counts {
    width: usize,
    table: HashMap<BitString, u64>,
    total: u64,
}

impl Counts {
    /// Creates an empty count table for `width`-bit outcomes.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            width,
            table: HashMap::new(),
            total: 0,
        }
    }

    /// Builds a table from an iterator of single-shot outcomes.
    ///
    /// # Panics
    ///
    /// Panics if any outcome's width differs from `width`.
    #[must_use]
    pub fn from_shots<I: IntoIterator<Item = BitString>>(width: usize, shots: I) -> Self {
        let mut counts = Self::new(width);
        for s in shots {
            counts.record(s, 1);
        }
        counts
    }

    /// Builds a table directly from `(outcome, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any outcome's width differs from `width`.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (BitString, u64)>>(width: usize, pairs: I) -> Self {
        let mut counts = Self::new(width);
        for (s, c) in pairs {
            counts.record(s, c);
        }
        counts
    }

    /// Adds `count` observations of `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if `outcome.len() != self.width()`.
    pub fn record(&mut self, outcome: BitString, count: u64) {
        assert_eq!(
            outcome.len(),
            self.width,
            "outcome width {} does not match table width {}",
            outcome.len(),
            self.width
        );
        if count == 0 {
            return;
        }
        *self.table.entry(outcome).or_insert(0) += count;
        self.total += count;
    }

    /// The fixed outcome width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of shots recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct outcomes observed.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.table.len()
    }

    /// Whether no shots have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The count recorded for `outcome` (zero if never observed).
    #[must_use]
    pub fn get(&self, outcome: &BitString) -> u64 {
        self.table.get(outcome).copied().unwrap_or(0)
    }

    /// Iterates over `(outcome, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&BitString, u64)> + '_ {
        self.table.iter().map(|(k, &v)| (k, v))
    }

    /// Returns the outcomes sorted by descending count (ties broken by the
    /// bit-string ordering, so the result is deterministic).
    #[must_use]
    pub fn sorted_by_count(&self) -> Vec<(BitString, u64)> {
        let mut v: Vec<_> = self.table.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The single most frequent outcome, if any shots were recorded.
    #[must_use]
    pub fn mode(&self) -> Option<BitString> {
        self.sorted_by_count().first().map(|&(s, _)| s)
    }

    /// Merges another table into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(
            self.width, other.width,
            "cannot merge counts of different widths"
        );
        for (&s, &c) in &other.table {
            *self.table.entry(s).or_insert(0) += c;
            self.total += c;
        }
    }

    /// Converts to a normalised probability [`Distribution`].
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (no shots ⇒ no distribution).
    #[must_use]
    pub fn to_distribution(&self) -> Distribution {
        assert!(self.total > 0, "cannot normalise an empty count table");
        let n = self.total as f64;
        Distribution::from_probs(
            self.width,
            self.table.iter().map(|(&s, &c)| (s, c as f64 / n)),
        )
    }

    /// Probability-of-Successful-Trial against the expected `target`
    /// (paper Eq. 6): `PST = n_correct / n_trials`.
    ///
    /// Returns 0 for an empty table.
    #[must_use]
    pub fn pst(&self, target: &BitString) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.get(target) as f64 / self.total as f64
    }
}

impl FromIterator<(BitString, u64)> for Counts {
    /// Collects pairs into a table, inferring the width from the first
    /// element (an empty iterator yields a zero-width empty table).
    fn from_iter<I: IntoIterator<Item = (BitString, u64)>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let width = it.peek().map_or(0, |(s, _)| s.len());
        Self::from_pairs(width, it)
    }
}

impl Extend<(BitString, u64)> for Counts {
    fn extend<I: IntoIterator<Item = (BitString, u64)>>(&mut self, iter: I) {
        for (s, c) in iter {
            self.record(s, c);
        }
    }
}

impl fmt::Display for Counts {
    /// Renders the table as `{"bits": count, ...}` sorted by count.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, c)) in self.sorted_by_count().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{s}\": {c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn record_accumulates() {
        let mut c = Counts::new(2);
        c.record(bs("01"), 3);
        c.record(bs("01"), 2);
        assert_eq!(c.get(&bs("01")), 5);
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    fn record_zero_is_noop() {
        let mut c = Counts::new(2);
        c.record(bs("01"), 0);
        assert!(c.is_empty());
        assert_eq!(c.distinct(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match table width")]
    fn record_wrong_width_panics() {
        let mut c = Counts::new(2);
        c.record(bs("011"), 1);
    }

    #[test]
    fn from_shots_counts_duplicates() {
        let c = Counts::from_shots(2, vec![bs("00"), bs("01"), bs("00")]);
        assert_eq!(c.get(&bs("00")), 2);
        assert_eq!(c.get(&bs("01")), 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn sorted_by_count_is_descending_and_deterministic() {
        let c = Counts::from_pairs(2, vec![(bs("00"), 5), (bs("11"), 5), (bs("01"), 9)]);
        let v = c.sorted_by_count();
        assert_eq!(v[0], (bs("01"), 9));
        assert_eq!(v[1], (bs("00"), 5)); // value tie broken by ordering
        assert_eq!(v[2], (bs("11"), 5));
        assert_eq!(c.mode(), Some(bs("01")));
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Counts::from_pairs(2, vec![(bs("00"), 1)]);
        let b = Counts::from_pairs(2, vec![(bs("00"), 2), (bs("10"), 3)]);
        a.merge(&b);
        assert_eq!(a.get(&bs("00")), 3);
        assert_eq!(a.get(&bs("10")), 3);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn to_distribution_normalises() {
        let c = Counts::from_pairs(1, vec![(bs("0"), 25), (bs("1"), 75)]);
        let d = c.to_distribution();
        assert!((d.prob(&bs("1")) - 0.75).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty count table")]
    fn to_distribution_empty_panics() {
        let _ = Counts::new(3).to_distribution();
    }

    #[test]
    fn pst_is_target_fraction() {
        let c = Counts::from_pairs(2, vec![(bs("11"), 30), (bs("00"), 70)]);
        assert!((c.pst(&bs("11")) - 0.3).abs() < 1e-12);
        assert_eq!(Counts::new(2).pst(&bs("11")), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let c: Counts = vec![(bs("10"), 2), (bs("01"), 1)].into_iter().collect();
        assert_eq!(c.width(), 2);
        assert_eq!(c.total(), 3);
        let mut c2 = c.clone();
        c2.extend(vec![(bs("10"), 1)]);
        assert_eq!(c2.get(&bs("10")), 3);
    }

    #[test]
    fn display_is_sorted_json_like() {
        let c = Counts::from_pairs(2, vec![(bs("00"), 1), (bs("01"), 9)]);
        assert_eq!(c.to_string(), "{\"01\": 9, \"00\": 1}");
    }

    #[test]
    fn serde_round_trip() {
        let c = Counts::from_pairs(2, vec![(bs("00"), 1), (bs("01"), 9)]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Counts = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
