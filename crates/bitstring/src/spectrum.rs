//! The Hamming spectrum: probability mass bucketed by Hamming distance.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitString, Counts, Distribution};

/// Probability mass of a distribution bucketed by Hamming distance from a
/// reference bit-string (paper §2.2).
///
/// Bucket `k` holds the total probability of all outcomes at Hamming
/// distance exactly `k` from the reference; there are `width + 1` buckets
/// (distances `0..=width`).
///
/// The spectrum exposes the two statistics §3.1 of the paper builds its
/// empirical argument on:
///
/// * [`expected_distance`](Self::expected_distance) — the Expected Hamming
///   Distance (EHD), which HAMMER argued stays small (local clustering)
///   and Q-BEEP shows grows with circuit complexity;
/// * [`index_of_dispersion`](Self::index_of_dispersion) — `σ²/μ` of the
///   distance distribution (paper Eq. 1); ≈ 1 indicates Poisson-like
///   clustering.
///
/// # Example
///
/// ```
/// use qbeep_bitstring::{BitString, Distribution};
///
/// let target = BitString::from_value(0b11, 2);
/// let d = Distribution::from_probs(2, vec![
///     (target, 0.5),
///     (BitString::from_value(0b01, 2), 0.3),
///     (BitString::from_value(0b00, 2), 0.2),
/// ]);
/// let spec = d.hamming_spectrum(&target);
/// assert_eq!(spec.mass(0), 0.5);
/// assert_eq!(spec.mass(1), 0.3);
/// assert_eq!(spec.mass(2), 0.2);
/// assert!((spec.expected_distance() - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HammingSpectrum {
    reference: BitString,
    /// `mass[k]` = probability of observing an outcome at distance `k`.
    mass: Vec<f64>,
}

impl HammingSpectrum {
    /// Buckets `dist`'s mass by distance from `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len() != dist.width()`.
    #[must_use]
    pub fn from_distribution(dist: &Distribution, reference: &BitString) -> Self {
        assert_eq!(
            reference.len(),
            dist.width(),
            "reference width {} != distribution width {}",
            reference.len(),
            dist.width()
        );
        // Accumulate in bit-string order: float addition is
        // order-sensitive in the last ulp, and the map's iteration
        // order varies with the per-process hash seed.
        let mut entries: Vec<(&BitString, f64)> = dist.iter().collect();
        entries.sort_unstable_by_key(|&(s, _)| *s);
        let mut mass = vec![0.0; reference.len() + 1];
        for (s, p) in entries {
            mass[reference.hamming_distance(s) as usize] += p;
        }
        Self {
            reference: *reference,
            mass,
        }
    }

    /// Buckets raw counts by distance from `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the count table is empty.
    #[must_use]
    pub fn from_counts(counts: &Counts, reference: &BitString) -> Self {
        Self::from_distribution(&counts.to_distribution(), reference)
    }

    /// Builds a spectrum directly from per-distance masses (normalising).
    ///
    /// Bucket `k` of `masses` is the weight of distance `k`; missing
    /// trailing buckets are zero.
    ///
    /// # Panics
    ///
    /// Panics if `masses` has more than `reference.len() + 1` entries, any
    /// entry is negative/non-finite, or the total is zero.
    #[must_use]
    pub fn from_masses(reference: BitString, masses: &[f64]) -> Self {
        match Self::try_from_masses(reference, masses) {
            Ok(s) => s,
            Err(_) => panic!("spectrum has zero total mass"),
        }
    }

    /// As [`from_masses`](Self::from_masses), but a zero total mass is
    /// a recoverable [`ZeroMassError`](crate::ZeroMassError) instead
    /// of a panic.
    ///
    /// # Errors
    ///
    /// [`crate::ZeroMassError`] when the masses sum to zero.
    ///
    /// # Panics
    ///
    /// Still panics on too many buckets or negative/non-finite masses.
    pub fn try_from_masses(
        reference: BitString,
        masses: &[f64],
    ) -> Result<Self, crate::ZeroMassError> {
        assert!(
            masses.len() <= reference.len() + 1,
            "{} masses exceed the {} buckets of a {}-bit spectrum",
            masses.len(),
            reference.len() + 1,
            reference.len()
        );
        let mut mass = vec![0.0; reference.len() + 1];
        let mut total = 0.0;
        for (k, &m) in masses.iter().enumerate() {
            assert!(
                m.is_finite() && m >= 0.0,
                "mass {m} at distance {k} is invalid"
            );
            mass[k] = m;
            total += m;
        }
        if total <= 0.0 {
            return Err(crate::ZeroMassError);
        }
        for m in &mut mass {
            *m /= total;
        }
        Ok(Self { reference, mass })
    }

    /// Builds a spectrum by summing per-shard partial mass vectors
    /// (as produced by [`accumulate_masses`]) and normalising.
    ///
    /// This is the merge half of the shard-safe bucketing protocol: a
    /// parallel caller splits its outcomes into shards, buckets each
    /// shard independently, then merges here. Because the merge is a
    /// plain element-wise sum over fixed-size bucket vectors, the
    /// result matches a single-pass [`from_distribution`]
    /// (Self::from_distribution) bucketing up to floating-point
    /// re-association of the per-bucket sums.
    ///
    /// # Errors
    ///
    /// [`crate::ZeroMassError`] when the merged masses sum to zero
    /// (including an empty `partials`).
    ///
    /// # Panics
    ///
    /// Panics if any partial has more than `reference.len() + 1`
    /// buckets or holds a negative/non-finite mass.
    pub fn from_partials(
        reference: BitString,
        partials: &[Vec<f64>],
    ) -> Result<Self, crate::ZeroMassError> {
        let merged = merge_mass_partials(reference.len(), partials);
        Self::try_from_masses(reference, &merged)
    }

    /// The reference (center) bit-string.
    #[must_use]
    pub fn reference(&self) -> &BitString {
        &self.reference
    }

    /// Number of qubits (`width`); the spectrum has `width + 1` buckets.
    #[must_use]
    pub fn width(&self) -> usize {
        self.reference.len()
    }

    /// Probability mass at Hamming distance exactly `k` (zero if `k` is
    /// out of range).
    #[must_use]
    pub fn mass(&self, k: usize) -> f64 {
        self.mass.get(k).copied().unwrap_or(0.0)
    }

    /// All per-distance masses, index = distance.
    #[must_use]
    pub fn masses(&self) -> &[f64] {
        &self.mass
    }

    /// The Expected Hamming Distance `E[d] = Σ_k k · mass(k)`.
    #[must_use]
    pub fn expected_distance(&self) -> f64 {
        self.mass
            .iter()
            .enumerate()
            .map(|(k, &m)| k as f64 * m)
            .sum()
    }

    /// Variance of the Hamming distance distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let mu = self.expected_distance();
        self.mass
            .iter()
            .enumerate()
            .map(|(k, &m)| (k as f64 - mu).powi(2) * m)
            .sum()
    }

    /// Index of Dispersion `IoD = σ² / μ` (paper Eq. 1).
    ///
    /// An IoD of 1 is the Poisson signature; < 1 indicates under-dispersed
    /// (tighter) clustering; > 1 over-dispersed. Returns `None` when the
    /// mean distance is zero (all mass on the reference), where the ratio
    /// is undefined.
    #[must_use]
    pub fn index_of_dispersion(&self) -> Option<f64> {
        let mu = self.expected_distance();
        (mu > 0.0).then(|| self.variance() / mu)
    }

    /// The spectrum of the *erroneous* outcomes only: removes the mass at
    /// distance 0 (the correct result) and renormalises, yielding the
    /// error-distance distribution that §3 models with a Poisson law.
    ///
    /// Returns `None` if there is no error mass at all.
    #[must_use]
    pub fn error_spectrum(&self) -> Option<HammingSpectrum> {
        let err_mass: f64 = self.mass[1..].iter().sum();
        if err_mass <= 0.0 {
            return None;
        }
        let mut mass = self.mass.clone();
        mass[0] = 0.0;
        for m in &mut mass {
            *m /= err_mass;
        }
        Some(Self {
            reference: self.reference,
            mass,
        })
    }

    /// Converts the spectrum to a [`Distribution`] over distances encoded
    /// as a plain vector — convenient for plotting (figure harness).
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        self.mass.clone()
    }
}

/// Buckets one shard of weighted outcomes into a raw (unnormalised)
/// per-distance mass vector with `width + 1` entries.
///
/// The shard half of the shard-safe bucketing protocol: each worker
/// accumulates its slice of a distribution (or count table) locally,
/// and the partials are summed by [`merge_mass_partials`] or fed to
/// [`HammingSpectrum::from_partials`]. Bucketing each item touches
/// exactly one bucket, so the partition of items across shards never
/// changes *which* additions happen — only their association — and
/// the merged result agrees with a single-pass bucketing to
/// floating-point re-association.
///
/// # Panics
///
/// Panics if any outcome's width differs from `reference.len()`.
#[must_use]
pub fn accumulate_masses<'a, I>(reference: &BitString, items: I) -> Vec<f64>
where
    I: IntoIterator<Item = (&'a BitString, f64)>,
{
    let mut mass = vec![0.0; reference.len() + 1];
    for (s, w) in items {
        assert_eq!(
            s.len(),
            reference.len(),
            "outcome width {} != reference width {}",
            s.len(),
            reference.len()
        );
        mass[reference.hamming_distance(s) as usize] += w;
    }
    mass
}

/// Element-wise sums shard partials (as produced by
/// [`accumulate_masses`]) into one raw mass vector of `width + 1`
/// buckets, in partial order.
///
/// # Panics
///
/// Panics if any partial has more than `width + 1` entries.
#[must_use]
pub fn merge_mass_partials(width: usize, partials: &[Vec<f64>]) -> Vec<f64> {
    let mut merged = vec![0.0; width + 1];
    for partial in partials {
        assert!(
            partial.len() <= width + 1,
            "{} buckets exceed the {} of a {width}-bit spectrum",
            partial.len(),
            width + 1,
        );
        for (k, &m) in partial.iter().enumerate() {
            merged[k] += m;
        }
    }
    merged
}

impl fmt::Display for HammingSpectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spectrum(ref={}, [", self.reference)?;
        for (k, m) in self.mass.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m:.3}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn buckets_sum_to_one() {
        let target = bs("111");
        let d = Distribution::uniform(3);
        let spec = d.hamming_spectrum(&target);
        let total: f64 = spec.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Uniform over 3 bits: C(3,k)/8 mass at distance k.
        assert!((spec.mass(0) - 1.0 / 8.0).abs() < 1e-12);
        assert!((spec.mass(1) - 3.0 / 8.0).abs() < 1e-12);
        assert!((spec.mass(2) - 3.0 / 8.0).abs() < 1e-12);
        assert!((spec.mass(3) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_ehd_is_half_width() {
        // §2.4: pure noise has EHD n/2.
        for n in [2usize, 4, 6] {
            let spec = Distribution::uniform(n).hamming_spectrum(&BitString::zeros(n));
            assert!(
                (spec.expected_distance() - n as f64 / 2.0).abs() < 1e-9,
                "n = {n}"
            );
        }
    }

    #[test]
    fn point_distribution_has_zero_ehd() {
        let t = bs("1010");
        let spec = Distribution::point(t).hamming_spectrum(&t);
        assert_eq!(spec.expected_distance(), 0.0);
        assert_eq!(spec.index_of_dispersion(), None);
        assert!(spec.error_spectrum().is_none());
    }

    #[test]
    fn binomial_noise_iod_matches_theory() {
        // Independent bit-flips with prob p give Binomial(n, p) distances:
        // IoD = 1 - p.
        let n = 10;
        let p: f64 = 0.3;
        let reference = BitString::zeros(n);
        let mut masses = vec![0.0; n + 1];
        for (k, m) in masses.iter_mut().enumerate() {
            *m = binom(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
        }
        let spec = HammingSpectrum::from_masses(reference, &masses);
        let iod = spec.index_of_dispersion().unwrap();
        assert!((iod - (1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn error_spectrum_removes_distance_zero() {
        let t = bs("11");
        let d = Distribution::from_probs(2, vec![(t, 0.6), (bs("10"), 0.2), (bs("00"), 0.2)]);
        let err = d.hamming_spectrum(&t).error_spectrum().unwrap();
        assert_eq!(err.mass(0), 0.0);
        assert!((err.mass(1) - 0.5).abs() < 1e-12);
        assert!((err.mass(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_masses_normalises() {
        let spec = HammingSpectrum::from_masses(bs("000"), &[2.0, 1.0, 1.0]);
        assert!((spec.mass(0) - 0.5).abs() < 1e-12);
        assert_eq!(spec.mass(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn from_masses_too_many_buckets_panics() {
        let _ = HammingSpectrum::from_masses(bs("00"), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_counts_equals_from_distribution() {
        let t = bs("10");
        let c = Counts::from_pairs(2, vec![(t, 70), (bs("00"), 30)]);
        let a = HammingSpectrum::from_counts(&c, &t);
        let b = c.to_distribution().hamming_spectrum(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_accumulation_matches_single_pass() {
        let reference = bs("1010");
        let d = Distribution::from_probs(
            4,
            vec![
                (bs("1010"), 0.4),
                (bs("1011"), 0.25),
                (bs("0010"), 0.15),
                (bs("0101"), 0.12),
                (bs("1111"), 0.08),
            ],
        );
        let whole = d.hamming_spectrum(&reference);
        let items: Vec<(BitString, f64)> = d.iter().map(|(s, p)| (*s, p)).collect();
        for split in 1..items.len() {
            let (lo, hi) = items.split_at(split);
            let partials = vec![
                accumulate_masses(&reference, lo.iter().map(|(s, p)| (s, *p))),
                accumulate_masses(&reference, hi.iter().map(|(s, p)| (s, *p))),
            ];
            let sharded = HammingSpectrum::from_partials(reference, &partials).unwrap();
            for k in 0..=4 {
                assert!(
                    (sharded.mass(k) - whole.mass(k)).abs() < 1e-12,
                    "split {split}, bucket {k}"
                );
            }
        }
    }

    #[test]
    fn merge_mass_partials_pads_short_partials() {
        let merged = merge_mass_partials(3, &[vec![1.0, 2.0], vec![0.5]]);
        assert_eq!(merged, vec![1.5, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn from_partials_rejects_zero_mass() {
        assert!(HammingSpectrum::from_partials(bs("00"), &[]).is_err());
        assert!(HammingSpectrum::from_partials(bs("00"), &[vec![0.0, 0.0]]).is_err());
    }

    fn binom(n: usize, k: usize) -> f64 {
        let mut out = 1.0;
        for i in 0..k {
            out = out * (n - i) as f64 / (i + 1) as f64;
        }
        out
    }
}
