//! The [`BitString`] measurement-outcome type.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::error::ParseBitStringError;

/// Maximum number of bits a [`BitString`] can hold.
///
/// 128 bits comfortably covers the largest device the paper evaluates
/// (IBM Washington, 127 qubits) while keeping the type `Copy` and free of
/// heap allocation.
pub const MAX_BITS: usize = 128;

/// A fixed-width string of classical bits — one measurement outcome of a
/// quantum circuit.
///
/// Bit `i` corresponds to the measurement of qubit `i` (little-endian).
/// The [`Display`](fmt::Display) rendering follows the usual quantum
/// convention of printing qubit `n-1` first (most significant bit on the
/// left), matching how IBMQ result dictionaries are written.
///
/// # Example
///
/// ```
/// use qbeep_bitstring::BitString;
///
/// let s = BitString::from_value(0b101, 3);
/// assert!(s.bit(0));
/// assert!(!s.bit(1));
/// assert!(s.bit(2));
/// assert_eq!(s.to_string(), "101");
/// assert_eq!(s.hamming_weight(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitString {
    /// Two little-endian 64-bit words; bits at index >= `len` are zero.
    words: [u64; 2],
    /// Number of valid bits.
    len: u16,
}

impl BitString {
    /// Creates the all-zero string of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        assert!(
            len <= MAX_BITS,
            "bit-string length {len} exceeds {MAX_BITS}"
        );
        Self {
            words: [0, 0],
            len: len as u16,
        }
    }

    /// Creates the all-one string of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS`.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut s = Self::zeros(len);
        for i in 0..len {
            s.set(i, true);
        }
        s
    }

    /// Creates a string of `len` bits from the low bits of `value`.
    ///
    /// Bits of `value` above `len` are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS`.
    #[must_use]
    pub fn from_value(value: u128, len: usize) -> Self {
        let mut s = Self::zeros(len);
        let masked = if len >= 128 {
            value
        } else {
            value & ((1u128 << len) - 1)
        };
        s.words[0] = masked as u64;
        s.words[1] = (masked >> 64) as u64;
        s
    }

    /// Creates a string from an iterator of bits, qubit 0 first.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more than [`MAX_BITS`] items.
    #[must_use]
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = Self::zeros(0);
        for (i, b) in bits.into_iter().enumerate() {
            assert!(i < MAX_BITS, "more than {MAX_BITS} bits supplied");
            s.len = (i + 1) as u16;
            s.set(i, b);
        }
        s
    }

    /// The number of bits in this string.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this string holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i` (the measurement of qubit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len(),
            "bit index {i} out of range for {}-bit string",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len(),
            "bit index {i} out of range for {}-bit string",
            self.len
        );
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips bit `i`, returning the modified copy.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn with_flipped(mut self, i: usize) -> Self {
        assert!(
            i < self.len(),
            "bit index {i} out of range for {}-bit string",
            self.len
        );
        self.words[i / 64] ^= 1 << (i % 64);
        self
    }

    /// Flips bit `i` in place.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len(),
            "bit index {i} out of range for {}-bit string",
            self.len
        );
        self.words[i / 64] ^= 1 << (i % 64);
    }

    /// The value of the string interpreted as a little-endian integer.
    #[must_use]
    pub fn value(&self) -> u128 {
        (self.words[0] as u128) | ((self.words[1] as u128) << 64)
    }

    /// Number of `1` bits (the Hamming weight).
    #[must_use]
    pub fn hamming_weight(&self) -> u32 {
        self.words[0].count_ones() + self.words[1].count_ones()
    }

    /// Hamming distance to `other`: the number of bit positions in which
    /// the two strings differ (paper §2.2).
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &Self) -> u32 {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths ({} vs {})",
            self.len, other.len
        );
        (self.words[0] ^ other.words[0]).count_ones()
            + (self.words[1] ^ other.words[1]).count_ones()
    }

    /// Bitwise XOR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "xor requires equal lengths");
        Self {
            words: [
                self.words[0] ^ other.words[0],
                self.words[1] ^ other.words[1],
            ],
            len: self.len,
        }
    }

    /// Iterates over the bits, qubit 0 first.
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(move |i| self.bit(i))
    }

    /// Iterates over every bit-string at Hamming distance exactly `d`
    /// from `self` (the surface of the Hamming ball).
    ///
    /// The iterator yields `C(len, d)` strings. `d == 0` yields `self`
    /// alone; `d > len` yields nothing.
    ///
    /// # Example
    ///
    /// ```
    /// use qbeep_bitstring::BitString;
    ///
    /// let s = BitString::zeros(4);
    /// let at_two: Vec<_> = s.neighbors_at(2).collect();
    /// assert_eq!(at_two.len(), 6); // C(4, 2)
    /// assert!(at_two.iter().all(|t| s.hamming_distance(t) == 2));
    /// ```
    #[must_use]
    pub fn neighbors_at(&self, d: usize) -> HammingBallIter {
        HammingBallIter::new(*self, d)
    }

    /// Truncates or zero-extends to `len` bits, returning the copy.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_BITS`.
    #[must_use]
    pub fn resized(&self, len: usize) -> Self {
        assert!(
            len <= MAX_BITS,
            "bit-string length {len} exceeds {MAX_BITS}"
        );
        let mut out = Self::zeros(len);
        for i in 0..len.min(self.len()) {
            out.set(i, self.bit(i));
        }
        out
    }

    /// Concatenates `other` above `self`: the result has `self`'s bits at
    /// positions `0..self.len()` and `other`'s at the positions above.
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds [`MAX_BITS`].
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        let total = self.len() + other.len();
        assert!(
            total <= MAX_BITS,
            "concatenated length {total} exceeds {MAX_BITS}"
        );
        let mut out = Self::zeros(total);
        for i in 0..self.len() {
            out.set(i, self.bit(i));
        }
        for i in 0..other.len() {
            out.set(self.len() + i, other.bit(i));
        }
        out
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len()).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(\"{self}\")")
    }
}

impl fmt::Binary for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for BitString {
    type Err = ParseBitStringError;

    /// Parses a string of `'0'`/`'1'` characters written MSB-first
    /// (qubit `n-1` leftmost), the IBMQ result-dictionary convention.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBitStringError::Empty);
        }
        if s.len() > MAX_BITS {
            return Err(ParseBitStringError::TooLong {
                len: s.len(),
                max: MAX_BITS,
            });
        }
        let mut out = Self::zeros(s.len());
        let n = s.len();
        for (pos, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => out.set(n - 1 - pos, true),
                other => {
                    return Err(ParseBitStringError::InvalidChar {
                        ch: other,
                        index: pos,
                    })
                }
            }
        }
        Ok(out)
    }
}

impl PartialOrd for BitString {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitString {
    /// Orders by length first, then by integer value — a total order that
    /// makes sorted result tables deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.value().cmp(&other.value()))
    }
}

impl Serialize for BitString {
    /// Serialises as the MSB-first text form (e.g. `"1011"`), which keeps
    /// bit-strings usable as JSON map keys.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_str(self)
    }
}

impl<'de> Deserialize<'de> for BitString {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

/// Iterator over bit-strings at a fixed Hamming distance from a center,
/// produced by [`BitString::neighbors_at`].
///
/// Enumerates index combinations in lexicographic order, so the output is
/// deterministic.
#[derive(Debug, Clone)]
pub struct HammingBallIter {
    center: BitString,
    /// Current combination of flip positions; empty means `d == 0` pending.
    combo: Vec<usize>,
    d: usize,
    done: bool,
}

impl HammingBallIter {
    fn new(center: BitString, d: usize) -> Self {
        let n = center.len();
        let done = d > n;
        let combo = (0..d.min(n)).collect();
        Self {
            center,
            combo,
            d,
            done,
        }
    }

    /// Advances `self.combo` to the next lexicographic combination of
    /// `self.d` indices out of `center.len()`. Returns false when exhausted.
    fn advance(&mut self) -> bool {
        let n = self.center.len();
        let d = self.d;
        let mut i = d;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if self.combo[i] < n - (d - i) {
                self.combo[i] += 1;
                for j in i + 1..d {
                    self.combo[j] = self.combo[j - 1] + 1;
                }
                return true;
            }
        }
    }
}

impl Iterator for HammingBallIter {
    type Item = BitString;

    fn next(&mut self) -> Option<BitString> {
        if self.done {
            return None;
        }
        if self.d == 0 {
            self.done = true;
            return Some(self.center);
        }
        let mut out = self.center;
        for &i in &self.combo {
            out.flip(i);
        }
        if !self.advance() {
            self.done = true;
        }
        Some(out)
    }
}

/// Enumerates every `width`-bit mask of Hamming weight exactly `k`, in
/// ascending integer order.
///
/// Yields `C(width, k)` masks; `k == 0` yields the zero mask alone and
/// `k > width` yields nothing. Each successor is computed with Gosper's
/// hack — a handful of adds, shifts and a trailing-zero count — so
/// enumeration is O(1) per mask with no allocation. XOR-ing the masks
/// of weights `1..=r` into a center string walks its whole Hamming ball
/// of radius `r`, which is what makes radius-bounded neighbor probing
/// output-sensitive instead of all-pairs.
///
/// # Example
///
/// ```
/// use qbeep_bitstring::weight_masks;
///
/// let masks: Vec<u128> = weight_masks(4, 2).collect();
/// assert_eq!(masks, vec![0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100]);
/// assert!(masks.iter().all(|m| m.count_ones() == 2));
/// ```
///
/// # Panics
///
/// Panics if `width > MAX_BITS`.
#[must_use]
pub fn weight_masks(width: usize, k: u32) -> WeightMaskIter {
    assert!(width <= MAX_BITS, "mask width {width} exceeds {MAX_BITS}");
    if k as usize > width {
        return WeightMaskIter {
            next: 0,
            last: 0,
            done: true,
        };
    }
    if k == 0 {
        return WeightMaskIter {
            next: 0,
            last: 0,
            done: false,
        };
    }
    let first = u128::MAX >> (128 - k);
    WeightMaskIter {
        next: first,
        last: first << (width - k as usize),
        done: false,
    }
}

/// Iterator over every `width`-bit mask with exactly `k` set bits, in
/// ascending integer order, produced by [`weight_masks`].
#[derive(Debug, Clone)]
pub struct WeightMaskIter {
    next: u128,
    last: u128,
    done: bool,
}

impl Iterator for WeightMaskIter {
    type Item = u128;

    fn next(&mut self) -> Option<u128> {
        if self.done {
            return None;
        }
        let v = self.next;
        if v == self.last {
            self.done = true;
        } else {
            // Gosper's hack: the smallest integer above `v` with the
            // same popcount. `v != last` rules out the overflow cases
            // (`v == 0` and an all-ones `t`), so the arithmetic below
            // never wraps.
            let t = v | (v - 1);
            self.next = (t + 1) | (((!t & (t + 1)) - 1) >> (v.trailing_zeros() + 1));
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitString::zeros(10);
        let o = BitString::ones(10);
        assert_eq!(z.hamming_weight(), 0);
        assert_eq!(o.hamming_weight(), 10);
        assert_eq!(z.hamming_distance(&o), 10);
    }

    #[test]
    fn from_value_masks_high_bits() {
        let s = BitString::from_value(0b1111_0101, 4);
        assert_eq!(s.value(), 0b0101);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn display_is_msb_first() {
        let s = BitString::from_value(0b001, 3);
        assert_eq!(s.to_string(), "001");
        let t = BitString::from_value(0b100, 3);
        assert_eq!(t.to_string(), "100");
    }

    #[test]
    fn parse_round_trips() {
        let s: BitString = "11010".parse().unwrap();
        assert_eq!(s.to_string(), "11010");
        assert_eq!(s.len(), 5);
        assert!(s.bit(1));
        assert!(!s.bit(0));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(matches!(
            "".parse::<BitString>(),
            Err(ParseBitStringError::Empty)
        ));
        assert!(matches!(
            "01x1".parse::<BitString>(),
            Err(ParseBitStringError::InvalidChar { ch: 'x', index: 2 })
        ));
        let long = "0".repeat(MAX_BITS + 1);
        assert!(matches!(
            long.parse::<BitString>(),
            Err(ParseBitStringError::TooLong { .. })
        ));
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a: BitString = "1100".parse().unwrap();
        let b: BitString = "1010".parse().unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_distance_length_mismatch_panics() {
        let a = BitString::zeros(3);
        let b = BitString::zeros(4);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn wide_strings_cross_word_boundary() {
        let mut s = BitString::zeros(100);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(99, true);
        assert_eq!(s.hamming_weight(), 4);
        let z = BitString::zeros(100);
        assert_eq!(s.hamming_distance(&z), 4);
        let round: BitString = s.to_string().parse().unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn xor_matches_distance() {
        let a: BitString = "10110".parse().unwrap();
        let b: BitString = "01110".parse().unwrap();
        assert_eq!(a.xor(&b).hamming_weight(), a.hamming_distance(&b));
    }

    #[test]
    fn neighbors_at_zero_is_self() {
        let s: BitString = "101".parse().unwrap();
        let v: Vec<_> = s.neighbors_at(0).collect();
        assert_eq!(v, vec![s]);
    }

    #[test]
    fn neighbors_at_counts_are_binomial() {
        let s = BitString::zeros(6);
        for d in 0..=6 {
            let count = s.neighbors_at(d).count();
            let expect = binomial(6, d);
            assert_eq!(count, expect, "d = {d}");
        }
        assert_eq!(s.neighbors_at(7).count(), 0);
    }

    #[test]
    fn neighbors_are_distinct_and_correct_distance() {
        let s: BitString = "01101".parse().unwrap();
        let v: Vec<_> = s.neighbors_at(3).collect();
        for t in &v {
            assert_eq!(s.hamming_distance(t), 3);
        }
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), v.len());
    }

    #[test]
    fn resized_preserves_low_bits() {
        let s: BitString = "1011".parse().unwrap();
        assert_eq!(s.resized(2).to_string(), "11");
        assert_eq!(s.resized(6).to_string(), "001011");
    }

    #[test]
    fn concat_stacks_bits() {
        let low: BitString = "11".parse().unwrap();
        let high: BitString = "01".parse().unwrap();
        assert_eq!(low.concat(&high).to_string(), "0111");
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut v = [
            BitString::from_value(3, 4),
            BitString::from_value(1, 4),
            BitString::from_value(2, 3),
        ];
        v.sort();
        assert_eq!(v[0].len(), 3);
        assert_eq!(v[1].value(), 1);
        assert_eq!(v[2].value(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let s: BitString = "10110".parse().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: BitString = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut out = 1usize;
        for i in 0..k {
            out = out * (n - i) / (i + 1);
        }
        out
    }

    #[test]
    fn weight_masks_counts_are_binomial() {
        for width in [1usize, 4, 7, 12] {
            for k in 0..=width as u32 + 1 {
                let masks: Vec<u128> = weight_masks(width, k).collect();
                assert_eq!(masks.len(), binomial(width, k as usize), "C({width},{k})");
                assert!(masks.iter().all(|m| m.count_ones() == k));
                assert!(masks.iter().all(|m| m >> width == 0));
                assert!(masks.windows(2).all(|w| w[0] < w[1]), "ascending order");
            }
        }
    }

    #[test]
    fn weight_masks_edge_weights() {
        assert_eq!(weight_masks(6, 0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(weight_masks(6, 7).count(), 0);
        // Full width: the single all-ones mask.
        assert_eq!(weight_masks(6, 6).collect::<Vec<_>>(), vec![0b11_1111]);
    }

    #[test]
    fn weight_masks_handle_the_full_128_bit_domain() {
        // k high bits of a 128-bit window: the last combination must
        // terminate without overflowing the Gosper step.
        let masks: Vec<u128> = weight_masks(128, 127).collect();
        assert_eq!(masks.len(), 128);
        assert_eq!(*masks.last().unwrap(), u128::MAX << 1);
        assert_eq!(weight_masks(128, 128).collect::<Vec<_>>(), vec![u128::MAX]);
    }

    #[test]
    fn xored_weight_masks_match_neighbors_at() {
        let s: BitString = "1011010".parse().unwrap();
        for d in 0..=7usize {
            let via_iter: Vec<BitString> = s.neighbors_at(d).collect();
            let mut via_masks: Vec<BitString> = weight_masks(s.len(), d as u32)
                .map(|m| BitString::from_value(s.value() ^ m, s.len()))
                .collect();
            via_masks.sort();
            let mut sorted_iter = via_iter;
            sorted_iter.sort();
            assert_eq!(via_masks, sorted_iter, "d = {d}");
        }
    }
}
