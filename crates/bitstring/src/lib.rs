//! Bit-strings, measurement-count tables, probability distributions and the
//! Hamming-spectrum machinery used throughout the Q-BEEP reproduction.
//!
//! This crate is the foundational substrate of the workspace: every other
//! crate (circuit simulation, the Q-BEEP mitigation engine, the benchmark
//! harness) speaks in terms of the types defined here.
//!
//! # Overview
//!
//! * [`BitString`] — a fixed-width measurement outcome of up to 128 qubits,
//!   stored inline (no heap allocation, `Copy`).
//! * [`Counts`] — a multiset of observed bit-strings, the classical readout
//!   artefact of running a quantum circuit for `N` shots.
//! * [`Distribution`] — a normalised probability distribution over
//!   bit-strings, with the distance metrics used by the paper
//!   (fidelity, Hellinger, total variation, KL divergence).
//! * [`HammingSpectrum`] — probability mass bucketed by Hamming distance
//!   from a reference string; exposes the expected Hamming distance (EHD)
//!   and the index of dispersion (IoD) statistics from §3.1 of the paper.
//! * [`stats`] — small numeric helpers (mean/variance, Pearson correlation,
//!   least-squares linear fit) used when regenerating the paper's figures.
//!
//! # Example
//!
//! ```
//! use qbeep_bitstring::{BitString, Counts};
//!
//! # fn main() -> Result<(), qbeep_bitstring::ParseBitStringError> {
//! let target: BitString = "1011".parse()?;
//! let mut counts = Counts::new(4);
//! counts.record(target, 900);
//! counts.record("1010".parse()?, 100);
//!
//! let dist = counts.to_distribution();
//! let spectrum = dist.hamming_spectrum(&target);
//! assert!(spectrum.expected_distance() < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstring;
mod counts;
mod dist;
mod error;
mod spectrum;

pub mod metrics;
pub mod stats;

pub use bitstring::{weight_masks, BitString, HammingBallIter, WeightMaskIter, MAX_BITS};
pub use counts::Counts;
pub use dist::Distribution;
pub use error::{ParseBitStringError, ZeroMassError};
pub use spectrum::{accumulate_masses, merge_mass_partials, HammingSpectrum};
