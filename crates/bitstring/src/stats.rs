//! Small numeric/statistical helpers shared by the figure harness:
//! summary statistics, Pearson correlation, least-squares linear fits,
//! percentiles and empirical CDFs.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance of a slice. Returns `None` for an empty slice.
#[must_use]
pub fn variance(xs: &[f64]) -> Option<f64> {
    let mu = mean(xs)?;
    Some(xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Pearson correlation coefficient `r` between paired samples.
///
/// Returns `None` if the slices have different lengths, are shorter than
/// two elements, or either variable is constant (undefined correlation).
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// An ordinary-least-squares line fit `y ≈ slope · x + intercept`.
///
/// Produced by [`linear_fit`]; used for the EHD-vs-gate-count trend
/// (Fig. 4) and the entropy-vs-gain regression (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ [0, 1].
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Signed correlation: `sign(slope) · sqrt(R²)`, matching the paper's
    /// habit of quoting a *signed* R value for inverse correlations
    /// (Fig. 11 reports "R-Squared = −0.82", i.e. a signed r).
    #[must_use]
    pub fn signed_r(&self) -> f64 {
        self.r_squared.sqrt().copysign(self.slope)
    }
}

/// Fits `y = a·x + b` by ordinary least squares.
///
/// Returns `None` under the same conditions as [`pearson`].
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = pearson(xs, ys)?;
    Some(LinearFit {
        slope,
        intercept,
        r_squared: r * r,
    })
}

/// The `q`-th percentile (0 ≤ q ≤ 100) by linear interpolation between
/// order statistics. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]` or any value is NaN.
#[must_use]
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile {q} outside [0, 100]"
    );
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Empirical CDF evaluated on a fixed grid: returns `(grid, F(grid))`
/// where `F(x)` is the fraction of samples ≤ `x`. Used to regenerate the
/// cumulative-distribution figures (Figs. 6 and 10b).
///
/// # Panics
///
/// Panics if `points == 0` or `samples` is empty or contains NaN.
#[must_use]
pub fn empirical_cdf(samples: &[f64], points: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(points > 0, "CDF grid needs at least one point");
    assert!(!samples.is_empty(), "CDF of an empty sample set");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let n = sorted.len() as f64;
    let mut grid = Vec::with_capacity(points);
    let mut cdf = Vec::with_capacity(points);
    for i in 0..points {
        let x = lo + span * i as f64 / (points.saturating_sub(1).max(1)) as f64;
        let rank = sorted.partition_point(|&v| v <= x);
        grid.push(x);
        cdf.push(rank as f64 / n);
    }
    (grid, cdf)
}

/// Histogram of samples into `bins` equal-width buckets over
/// `[lo, hi)`; values outside the range are clamped into the end bins.
/// Used for the Poisson-parameter histogram (Fig. 10c).
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
#[must_use]
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range [{lo}, {hi}) is empty");
    let mut out = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in samples {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        out[idx] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(variance(&[2.0, 2.0, 2.0]), Some(0.0));
        assert!((variance(&[1.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_undefined() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&xs, &[1.0]), None);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
        assert!(fit.signed_r() > 0.0);
    }

    #[test]
    fn signed_r_reflects_inverse_correlation() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [7.1, 5.2, 2.9, 1.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.signed_r() < -0.99);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert!((percentile(&xs, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn empirical_cdf_monotone_and_bounded() {
        let samples = [0.1, 0.4, 0.4, 0.9];
        let (grid, cdf) = empirical_cdf(&samples, 10);
        assert_eq!(grid.len(), 10);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0]));
        assert!((cdf[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = histogram(&[-1.0, 0.1, 0.5, 0.9, 5.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
    }
}
