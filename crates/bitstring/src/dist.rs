//! Probability distributions over bit-strings and the distance metrics the
//! paper evaluates with (fidelity, Hellinger, TVD, KL).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitString, Counts, HammingSpectrum, ZeroMassError};

/// A probability distribution over `width`-bit outcomes.
///
/// Probabilities are stored sparsely; any outcome not present has
/// probability zero. Construction normalises defensively so that the mass
/// always sums to 1 (within floating-point error).
///
/// # Example
///
/// ```
/// use qbeep_bitstring::{BitString, Distribution};
///
/// let d = Distribution::from_probs(2, vec![
///     (BitString::from_value(0, 2), 1.0),
///     (BitString::from_value(3, 2), 3.0), // weights need not be normalised
/// ]);
/// assert!((d.prob(&BitString::from_value(3, 2)) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    width: usize,
    probs: HashMap<BitString, f64>,
}

impl Distribution {
    /// Builds a distribution from non-negative weights, normalising them.
    ///
    /// Entries with zero weight are dropped; duplicate outcomes have their
    /// weights summed.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite, if any outcome's
    /// width differs from `width`, or if the total weight is zero.
    #[must_use]
    pub fn from_probs<I: IntoIterator<Item = (BitString, f64)>>(width: usize, weights: I) -> Self {
        match Self::try_from_probs(width, weights) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`from_probs`](Self::from_probs), but a zero total weight is
    /// a recoverable [`ZeroMassError`] instead of a panic — the shape
    /// the mitigation pipeline needs when degenerate inputs (empty or
    /// all-zero counts) are expected traffic rather than programmer
    /// error.
    ///
    /// # Errors
    ///
    /// [`ZeroMassError`] when the weights sum to zero.
    ///
    /// # Panics
    ///
    /// Still panics on negative/non-finite weights or width
    /// mismatches: those are malformed inputs, not degenerate ones.
    pub fn try_from_probs<I: IntoIterator<Item = (BitString, f64)>>(
        width: usize,
        weights: I,
    ) -> Result<Self, ZeroMassError> {
        let mut probs: HashMap<BitString, f64> = HashMap::new();
        let mut total = 0.0;
        for (s, w) in weights {
            assert_eq!(
                s.len(),
                width,
                "outcome width {} != distribution width {width}",
                s.len()
            );
            assert!(
                w.is_finite() && w >= 0.0,
                "weight {w} for {s} is not a finite non-negative number"
            );
            if w > 0.0 {
                *probs.entry(s).or_insert(0.0) += w;
                total += w;
            }
        }
        if total <= 0.0 {
            return Err(ZeroMassError);
        }
        // Re-accumulate the normaliser in bit-string order: float
        // addition is order-sensitive in the last ulp, and the map's
        // iteration order varies with the per-process hash seed, so
        // summing in map order would make equal inputs produce
        // not-quite-equal distributions across processes.
        let mut ordered: Vec<(BitString, f64)> = probs.iter().map(|(&s, &w)| (s, w)).collect();
        ordered.sort_by_key(|&(s, _)| s);
        let total: f64 = ordered.iter().map(|&(_, w)| w).sum();
        for p in probs.values_mut() {
            *p /= total;
        }
        Ok(Self { width, probs })
    }

    /// The distribution placing all mass on a single outcome.
    #[must_use]
    pub fn point(outcome: BitString) -> Self {
        let width = outcome.len();
        Self::from_probs(width, [(outcome, 1.0)])
    }

    /// The uniform distribution over all `2^width` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `width > 24` (the dense table would be too large; the
    /// paper's circuits are 4–15 qubits).
    #[must_use]
    pub fn uniform(width: usize) -> Self {
        assert!(
            width <= 24,
            "dense uniform distribution over {width} qubits is too large"
        );
        let n = 1u64 << width;
        Self::from_probs(
            width,
            (0..n).map(|v| (BitString::from_value(v as u128, width), 1.0)),
        )
    }

    /// The outcome width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The probability of `outcome` (zero when absent).
    #[must_use]
    pub fn prob(&self, outcome: &BitString) -> f64 {
        self.probs.get(outcome).copied().unwrap_or(0.0)
    }

    /// Number of outcomes carrying non-zero probability (the support size).
    #[must_use]
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// Iterates over `(outcome, probability)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&BitString, f64)> + '_ {
        self.probs.iter().map(|(k, &v)| (k, v))
    }

    /// Outcomes sorted by descending probability (deterministic ties).
    #[must_use]
    pub fn sorted_by_prob(&self) -> Vec<(BitString, f64)> {
        let mut v: Vec<_> = self.probs.iter().map(|(&k, &p)| (k, p)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The most probable outcome.
    #[must_use]
    pub fn mode(&self) -> BitString {
        self.sorted_by_prob()[0].0
    }

    /// Sum of all stored probabilities; ≈ 1 by construction. Exposed so
    /// callers (and debug assertions) can verify normalisation.
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Converts back to integer counts for a given number of shots using
    /// largest-remainder rounding, so the counts sum exactly to `shots`.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    #[must_use]
    pub fn to_counts(&self, shots: u64) -> Counts {
        assert!(shots > 0, "cannot materialise counts for zero shots");
        let mut items: Vec<(BitString, f64)> = self.sorted_by_prob();
        let mut floors: Vec<(BitString, u64, f64)> = items
            .drain(..)
            .map(|(s, p)| {
                let exact = p * shots as f64;
                let fl = exact.floor() as u64;
                (s, fl, exact - exact.floor())
            })
            .collect();
        let assigned: u64 = floors.iter().map(|&(_, f, _)| f).sum();
        let mut leftover = shots - assigned.min(shots);
        // Hand remaining shots to the largest fractional remainders.
        floors.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then_with(|| a.0.cmp(&b.0)));
        let mut counts = Counts::new(self.width);
        for (s, f, _) in floors {
            let extra = u64::from(leftover > 0);
            leftover -= extra;
            counts.record(s, f + extra);
        }
        counts
    }

    /// Classical state fidelity used throughout the paper (§2.2):
    /// `F(p, q) = (Σ_i sqrt(p_i · q_i))²` — the squared Bhattacharyya
    /// coefficient, 1 for identical distributions, 0 for disjoint support.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn fidelity(&self, other: &Distribution) -> f64 {
        (self.bhattacharyya(other)).powi(2)
    }

    /// The Bhattacharyya coefficient `Σ_i sqrt(p_i q_i)` ∈ [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn bhattacharyya(&self, other: &Distribution) -> f64 {
        assert_eq!(self.width, other.width, "fidelity requires equal widths");
        let mut bc = 0.0;
        for (s, p) in self.iter() {
            let q = other.prob(s);
            if q > 0.0 {
                bc += (p * q).sqrt();
            }
        }
        bc.min(1.0)
    }

    /// Hellinger distance `sqrt(1 − BC(p, q))` ∈ [0, 1] — the metric used
    /// for the model-validation figure (paper Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn hellinger(&self, other: &Distribution) -> f64 {
        (1.0 - self.bhattacharyya(other)).max(0.0).sqrt()
    }

    /// Total-variation distance `½ Σ_i |p_i − q_i|` ∈ [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn total_variation(&self, other: &Distribution) -> f64 {
        assert_eq!(self.width, other.width, "TVD requires equal widths");
        let mut acc = 0.0;
        for (s, p) in self.iter() {
            acc += (p - other.prob(s)).abs();
        }
        for (s, q) in other.iter() {
            if self.prob(s) == 0.0 {
                acc += q;
            }
        }
        acc / 2.0
    }

    /// Kullback–Leibler divergence `Σ p_i ln(p_i / q_i)` in nats.
    ///
    /// Returns `f64::INFINITY` when `self` has mass where `other` has
    /// none (absolute-continuity violation).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn kl_divergence(&self, other: &Distribution) -> f64 {
        assert_eq!(
            self.width, other.width,
            "KL divergence requires equal widths"
        );
        let mut acc = 0.0;
        for (s, p) in self.iter() {
            let q = other.prob(s);
            if q == 0.0 {
                return f64::INFINITY;
            }
            acc += p * (p / q).ln();
        }
        acc.max(0.0)
    }

    /// Shannon entropy `−Σ p_i log2(p_i)` in bits (paper §5 uses this to
    /// characterise algorithm output diversity).
    #[must_use]
    pub fn shannon_entropy(&self) -> f64 {
        -self
            .probs
            .values()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.log2())
            .sum::<f64>()
    }

    /// Buckets this distribution's mass by Hamming distance from
    /// `reference`, producing the [`HammingSpectrum`] of §2.2.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len() != self.width()`.
    #[must_use]
    pub fn hamming_spectrum(&self, reference: &BitString) -> HammingSpectrum {
        HammingSpectrum::from_distribution(self, reference)
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, p)) in self.sorted_by_prob().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{s}\": {p:.4}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn from_probs_normalises_and_merges() {
        let d =
            Distribution::from_probs(2, vec![(bs("00"), 2.0), (bs("00"), 2.0), (bs("11"), 4.0)]);
        assert!((d.prob(&bs("00")) - 0.5).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(d.support_size(), 2);
    }

    #[test]
    fn zero_weights_are_dropped() {
        let d = Distribution::from_probs(1, vec![(bs("0"), 0.0), (bs("1"), 1.0)]);
        assert_eq!(d.support_size(), 1);
    }

    #[test]
    #[should_panic(expected = "zero total mass")]
    fn all_zero_weights_panics() {
        let _ = Distribution::from_probs(1, vec![(bs("0"), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "not a finite non-negative")]
    fn negative_weight_panics() {
        let _ = Distribution::from_probs(1, vec![(bs("0"), -1.0)]);
    }

    #[test]
    fn point_and_uniform() {
        let p = Distribution::point(bs("101"));
        assert_eq!(p.prob(&bs("101")), 1.0);
        let u = Distribution::uniform(3);
        assert_eq!(u.support_size(), 8);
        assert!((u.prob(&bs("110")) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn fidelity_bounds() {
        let a = Distribution::point(bs("00"));
        let b = Distribution::point(bs("11"));
        assert_eq!(a.fidelity(&b), 0.0);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_matches_hand_computation() {
        let p = Distribution::from_probs(1, vec![(bs("0"), 0.5), (bs("1"), 0.5)]);
        let q = Distribution::from_probs(1, vec![(bs("0"), 0.9), (bs("1"), 0.1)]);
        let bc = (0.5f64 * 0.9).sqrt() + (0.5f64 * 0.1).sqrt();
        assert!((p.fidelity(&q) - bc * bc).abs() < 1e-12);
    }

    #[test]
    fn hellinger_is_metric_like() {
        let p = Distribution::from_probs(1, vec![(bs("0"), 0.5), (bs("1"), 0.5)]);
        let q = Distribution::point(bs("0"));
        assert_eq!(p.hellinger(&p), 0.0);
        let d = p.hellinger(&q);
        assert!(d > 0.0 && d < 1.0);
        assert!((q.hellinger(&p) - d).abs() < 1e-12); // symmetry
        let r = Distribution::point(bs("1"));
        assert!((q.hellinger(&r) - 1.0).abs() < 1e-12); // disjoint support
    }

    #[test]
    fn tvd_matches_hand_computation() {
        let p = Distribution::from_probs(1, vec![(bs("0"), 0.8), (bs("1"), 0.2)]);
        let q = Distribution::from_probs(1, vec![(bs("0"), 0.5), (bs("1"), 0.5)]);
        assert!((p.total_variation(&q) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = Distribution::from_probs(1, vec![(bs("0"), 0.7), (bs("1"), 0.3)]);
        assert!(p.kl_divergence(&p).abs() < 1e-12);
        let q = Distribution::point(bs("0"));
        assert!(p.kl_divergence(&q).is_infinite());
        assert!(q.kl_divergence(&p) > 0.0);
    }

    #[test]
    fn entropy_limits() {
        assert_eq!(Distribution::point(bs("0101")).shannon_entropy(), 0.0);
        let u = Distribution::uniform(4);
        assert!((u.shannon_entropy() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn to_counts_sums_exactly() {
        let d =
            Distribution::from_probs(2, vec![(bs("00"), 1.0), (bs("01"), 1.0), (bs("10"), 1.0)]);
        let c = d.to_counts(1000);
        assert_eq!(c.total(), 1000);
        // Each outcome gets 333 or 334.
        for (_, n) in c.iter() {
            assert!((333..=334).contains(&n));
        }
    }

    #[test]
    fn counts_distribution_round_trip() {
        let c = Counts::from_pairs(2, vec![(bs("00"), 600), (bs("01"), 250), (bs("11"), 150)]);
        let back = c.to_distribution().to_counts(1000);
        assert_eq!(back, c);
    }

    #[test]
    fn mode_is_highest_probability() {
        let d = Distribution::from_probs(2, vec![(bs("00"), 0.2), (bs("10"), 0.8)]);
        assert_eq!(d.mode(), bs("10"));
    }
}
