//! Free-standing evaluation metrics used by the paper's figures.
//!
//! Most metrics live as methods on [`Distribution`] and [`Counts`];
//! this module collects the ones that are
//! naturally free functions (and thin convenience wrappers so the bench
//! harness reads like the paper's equations).

use crate::{BitString, Counts, Distribution};

/// Classical fidelity `F(p, q) = (Σ_i sqrt(p_i q_i))²` (paper §2.2).
///
/// Convenience wrapper over [`Distribution::fidelity`].
///
/// # Panics
///
/// Panics if the widths differ.
#[must_use]
pub fn fidelity(p: &Distribution, q: &Distribution) -> f64 {
    p.fidelity(q)
}

/// Hellinger distance between two distributions (paper Fig. 6's x-axis).
///
/// # Panics
///
/// Panics if the widths differ.
#[must_use]
pub fn hellinger(p: &Distribution, q: &Distribution) -> f64 {
    p.hellinger(q)
}

/// Probability-of-Successful-Trial (paper Eq. 6).
#[must_use]
pub fn pst(counts: &Counts, target: &BitString) -> f64 {
    counts.pst(target)
}

/// Shannon entropy of a distribution in bits (paper §5).
#[must_use]
pub fn shannon_entropy(p: &Distribution) -> f64 {
    p.shannon_entropy()
}

/// Expected Hamming distance of `observed` from `reference` (paper §3.1).
///
/// # Panics
///
/// Panics if widths differ or `observed` is empty.
#[must_use]
pub fn expected_hamming_distance(observed: &Counts, reference: &BitString) -> f64 {
    observed
        .to_distribution()
        .hamming_spectrum(reference)
        .expected_distance()
}

/// Expected Hamming distance of the *errors only* — mass at distance 0 is
/// excluded, matching how §3.1 computes "the EHD of the circuit errors".
///
/// Returns `None` when every shot hit the reference exactly.
///
/// # Panics
///
/// Panics if widths differ or `observed` is empty.
#[must_use]
pub fn error_expected_hamming_distance(observed: &Counts, reference: &BitString) -> Option<f64> {
    observed
        .to_distribution()
        .hamming_spectrum(reference)
        .error_spectrum()
        .map(|e| e.expected_distance())
}

/// Index of dispersion of the error-distance distribution (paper Eq. 1
/// applied to the error spectrum, as in Fig. 4c).
///
/// Returns `None` when there are no errors.
///
/// # Panics
///
/// Panics if widths differ or `observed` is empty.
#[must_use]
pub fn error_index_of_dispersion(observed: &Counts, reference: &BitString) -> Option<f64> {
    observed
        .to_distribution()
        .hamming_spectrum(reference)
        .error_spectrum()
        .and_then(|e| e.index_of_dispersion())
}

/// Relative improvement ratio `after / before`, the y-axis of the paper's
/// comparison figures (Figs. 7a, 7b, 8, 10a).
///
/// Degenerate cases: both zero → 1 (no change); only `before` zero → the
/// improvement is unbounded, reported as `f64::INFINITY`.
#[must_use]
pub fn relative_improvement(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        if after == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        after / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn wrappers_delegate() {
        let t = bs("11");
        let p = Distribution::point(t);
        let q = Distribution::uniform(2);
        assert_eq!(fidelity(&p, &q), p.fidelity(&q));
        assert_eq!(hellinger(&p, &q), p.hellinger(&q));
        assert_eq!(shannon_entropy(&q), 2.0);
    }

    #[test]
    fn ehd_and_error_ehd() {
        let t = bs("11");
        let c = Counts::from_pairs(2, vec![(t, 50), (bs("01"), 25), (bs("00"), 25)]);
        // EHD = 0*0.5 + 1*0.25 + 2*0.25 = 0.75
        assert!((expected_hamming_distance(&c, &t) - 0.75).abs() < 1e-12);
        // Error EHD: distances 1 and 2 with equal mass → 1.5
        assert!((error_expected_hamming_distance(&c, &t).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn error_metrics_none_when_perfect() {
        let t = bs("10");
        let c = Counts::from_pairs(2, vec![(t, 100)]);
        assert!(error_expected_hamming_distance(&c, &t).is_none());
        assert!(error_index_of_dispersion(&c, &t).is_none());
    }

    #[test]
    fn relative_improvement_cases() {
        assert!((relative_improvement(0.2, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(relative_improvement(0.0, 0.0), 1.0);
        assert!(relative_improvement(0.0, 0.1).is_infinite());
    }
}
