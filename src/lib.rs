//! # qbeep — Quantum Bayesian Error mitigation Employing Poisson
//! modeling over the Hamming spectrum
//!
//! A from-scratch Rust reproduction of *Q-BEEP* (Stein, Wiebe, Ding,
//! Ang, Li — ISCA 2023), including every substrate the paper's
//! evaluation depends on: a quantum-circuit IR and algorithm library, a
//! NISQ device/calibration model, a transpiler, simulators (ideal,
//! Markovian-noise, and the empirical Poisson–Hamming device channel),
//! the Q-BEEP mitigation engine itself, the HAMMER baseline, and a
//! QAOA problem substrate.
//!
//! This umbrella crate re-exports the workspace crates under stable
//! module names; depend on it to get the whole system, or on the
//! individual `qbeep-*` crates for narrower footprints.
//!
//! # Quickstart
//!
//! ```
//! use qbeep::circuit::library::bernstein_vazirani;
//! use qbeep::core::QBeep;
//! use qbeep::device::profiles;
//! use qbeep::sim::{execute_on_device, EmpiricalConfig};
//! use rand::SeedableRng;
//!
//! // 1. A 5-qubit Bernstein–Vazirani problem and a synthetic machine.
//! let secret = "10110".parse().unwrap();
//! let backend = profiles::by_name("fake_lagos").unwrap();
//!
//! // 2. Run it on the noisy device stand-in.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let run = execute_on_device(
//!     &bernstein_vazirani(&secret), &backend, 4000,
//!     &EmpiricalConfig::default(), &mut rng,
//! ).unwrap();
//!
//! // 3. Mitigate offline with Q-BEEP.
//! let result = QBeep::default().mitigate_run(&run.counts, &run.transpiled, &backend);
//!
//! let before = run.counts.pst(&secret);
//! let after = result.mitigated.prob(&secret);
//! assert!(after > before, "PST {before:.3} -> {after:.3}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Bit-strings, counts, distributions, Hamming spectra and metrics.
pub use qbeep_bitstring as bitstring;
/// Circuit IR and the benchmark algorithm library.
pub use qbeep_circuit as circuit;
/// The Q-BEEP mitigation engine and the HAMMER baseline.
pub use qbeep_core as core;
/// Topologies, calibration snapshots and machine profiles.
pub use qbeep_device as device;
/// Worker-thread knob and deterministic sharding helpers.
pub use qbeep_par as par;
/// QAOA problems, circuits, cost ratio and the synthetic dataset.
pub use qbeep_qaoa as qaoa;
/// Ideal, Markovian-noise and empirical-channel simulators.
pub use qbeep_sim as sim;
/// Spans, counters, histograms and structured run reports.
pub use qbeep_telemetry as telemetry;
/// Basis decomposition, layout, routing and scheduling.
pub use qbeep_transpile as transpile;
