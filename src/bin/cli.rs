//! `qbeep-cli` — command-line front end for the Q-BEEP workspace.
//!
//! The paper positions Q-BEEP as "a light-weight post-processing
//! technique that can be performed offline and remotely, making it a
//! useful tool for quantum vendors to adopt"; this binary is that
//! tool: feed it an OpenQASM circuit and a counts JSON and it returns
//! the mitigated distribution. It can also list the synthetic
//! backends, transpile circuits, and run the full simulate+mitigate
//! demo loop.
//!
//! ```text
//! qbeep-cli backends
//! qbeep-cli transpile --qasm circuit.qasm --backend fake_lagos
//! qbeep-cli run --qasm circuit.qasm --backend fake_lagos --shots 4000
//! qbeep-cli run --qasm circuit.qasm --backend fake_lagos --telemetry json
//! qbeep-cli mitigate --qasm circuit.qasm --backend fake_lagos --counts counts.json
//! qbeep-cli mitigate --counts counts.json --lambda 0.8
//! qbeep-cli mitigate --counts counts.json --lambda 0.8 --strategy hammer --compare qbeep
//! qbeep-cli run --qasm circuit.qasm --backend fake_lagos --metrics=prom --flight-dir dumps/
//! qbeep-cli inspect --flight dumps/ --last 20
//! qbeep-cli help
//! ```
//!
//! Counts JSON is the IBMQ-style dictionary: `{"1011": 812, ...}`.
//! With `--telemetry` (or `QBEEP_TELEMETRY=json|table` in the
//! environment) each command also prints a structured run report —
//! provenance manifest, span timings, λ breakdown, graph statistics,
//! per-iteration series — to stderr, leaving stdout machine-parseable.
//! `--trace FILE` additionally writes the run's timestamped event
//! timeline as Chrome `trace_event` JSON (loadable in
//! <https://ui.perfetto.dev> or `chrome://tracing`), and `--events`
//! streams the same events as JSONL to stderr.
//!
//! `--metrics[=prom|jsonl]` prints a labeled-metrics exposition
//! (Prometheus text format 0.0.4 or JSONL) on stderr after the run,
//! and `--flight-dir DIR` persists any flight-recorder incidents
//! (panicked jobs, watchdog degradations, injected faults) as
//! `*.flight.json` black boxes. `qbeep-cli inspect` renders those
//! dumps — and saved metrics snapshots — back into human-readable
//! incident reports.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qbeep::bitstring::{BitString, Counts};
use qbeep::circuit::qasm::from_qasm;
use qbeep::circuit::Circuit;
use qbeep::core::{
    provenance, MitigationJob, MitigationSession, QBeep, QBeepConfig, StrategyDiagnostics,
    StrategySpec,
};
use qbeep::device::{profiles, Backend};
use qbeep::sim::{execute_on_device_recorded, EmpiricalConfig};
use qbeep::telemetry::{
    CountingAlloc, FlightDump, FlightRecorder, IntrospectServer, IntrospectSources,
    MetricsRegistry, MetricsSnapshot, ProfileReport, ProvenanceManifest, Recorder, RssSampler,
    SampleValue,
};
use qbeep::transpile::Transpiler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counting allocator so `--introspect` runs can attribute allocation
/// bytes to pipeline stages; a single relaxed atomic load of overhead
/// when profiling is off.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Flags that may appear without a value (`--telemetry` alone means
/// the table format; `--metrics` alone means the Prometheus format;
/// `--events` asks for the JSONL stream; `--help` is a request for the
/// usage text).
const VALUELESS_FLAGS: &[&str] = &["telemetry", "metrics", "events", "help"];

/// Observability, fault-injection and parallelism flags every command
/// accepts.
const COMMON_FLAGS: &[&str] = &[
    "telemetry",
    "trace",
    "events",
    "metrics",
    "flight-dir",
    "help",
    "faults",
    "fault-seed",
    "threads",
    "introspect",
];

/// The command-specific flags each command accepts (on top of
/// [`COMMON_FLAGS`]).
fn known_flags(command: &str) -> &'static [&'static str] {
    match command {
        "transpile" => &["qasm", "backend"],
        "run" => &[
            "qasm",
            "backend",
            "shots",
            "seed",
            "iterations",
            "epsilon",
            "max-iters",
            "time-budget-ms",
        ],
        "mitigate" => &[
            "counts",
            "lambda",
            "qasm",
            "backend",
            "iterations",
            "epsilon",
            "max-iters",
            "time-budget-ms",
            "strategy",
            "compare",
        ],
        "inspect" => &["flight", "last"],
        _ => &[],
    }
}

/// Rejects flags the command does not know, so a typo like `--shot`
/// fails loudly instead of silently running with the default.
fn validate_flags(command: &str, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let allowed = known_flags(command);
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) && !COMMON_FLAGS.contains(&key.as_str()) {
            return Err(format!(
                "unknown flag --{key} for `qbeep-cli {command}`; \
                 run `qbeep-cli --help` for the flag list"
            ));
        }
    }
    Ok(())
}

/// Parsed command-line options: `--key value` / `--key=value` pairs
/// after the subcommand.
struct Options {
    command: String,
    flags: BTreeMap<String, String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1).peekable();
    let command = args.next().ok_or_else(usage)?;
    let mut flags = BTreeMap::new();
    while let Some(key) = args.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{key}'"))?
            .to_string();
        if let Some((name, value)) = key.split_once('=') {
            flags.insert(name.to_string(), value.to_string());
            continue;
        }
        let next_is_value = args.peek().is_some_and(|next| !next.starts_with("--"));
        if next_is_value {
            let Some(value) = args.next() else {
                return Err(format!("--{key} needs a value"));
            };
            flags.insert(key, value);
        } else if VALUELESS_FLAGS.contains(&key.as_str()) {
            flags.insert(key, String::new());
        } else {
            return Err(format!("--{key} needs a value"));
        }
    }
    Ok(Options { command, flags })
}

fn usage() -> String {
    "usage: qbeep-cli <backends|transpile|run|mitigate|inspect|help> [flags]\n\
     run `qbeep-cli help` for the full flag list"
        .to_string()
}

fn long_usage() -> String {
    "qbeep-cli — Q-BEEP quantum error mitigation over the Hamming spectrum\n\
     \n\
     usage: qbeep-cli <command> [flags]\n\
     \n\
     commands:\n\
     \x20 backends   list the synthetic backend profiles\n\
     \x20 transpile  lower --qasm onto --backend, print OpenQASM\n\
     \x20 run        simulate --qasm on --backend, print counts JSON\n\
     \x20 mitigate   mitigate --counts with Q-BEEP, print probabilities JSON\n\
     \x20 inspect    render *.flight.json dumps / metrics snapshots as an\n\
     \x20            incident report\n\
     \x20 help       print this message\n\
     \n\
     flags (--key value or --key=value):\n\
     \x20 --qasm FILE          OpenQASM 2.0 circuit to transpile/run/mitigate\n\
     \x20 --backend NAME       backend profile (see `qbeep-cli backends`)\n\
     \x20 --counts FILE        counts JSON, IBMQ-style {\"1011\": 812, ...}\n\
     \x20 --shots N            shots to simulate (default 4000)\n\
     \x20 --seed N             simulation rng seed (default 0)\n\
     \x20 --lambda X           skip Eq.-2 estimation, use this rate\n\
     \x20 --iterations N       Algorithm-1 iteration count (default 20)\n\
     \x20 --epsilon X          edge-weight pruning threshold\n\
     \x20 --max-iters N        watchdog cap on graph iterations; hitting it\n\
     \x20                      yields a best-effort result flagged degraded\n\
     \x20 --time-budget-ms MS  watchdog wall-clock budget for the graph loop\n\
     \x20 --faults SPEC        arm fault injection (site:kind[@sel];...);\n\
     \x20                      needs a build with --features fault-injection\n\
     \x20 --fault-seed N       seed for probabilistic fault selectors\n\
     \x20 --threads N          worker threads for the mitigation hot path\n\
     \x20                      (default 1; env QBEEP_THREADS does the same;\n\
     \x20                      needs a build with --features parallel).\n\
     \x20                      Results are bit-identical at any count\n\
     \x20 --strategy NAME      mitigation strategy (default qbeep): qbeep,\n\
     \x20                      hammer, ibu, binomial, neg-binomial, uniform,\n\
     \x20                      identity\n\
     \x20 --compare NAMES      also run these comma-separated strategies and\n\
     \x20                      summarize them on stderr, e.g.\n\
     \x20                      --strategy hammer --compare qbeep\n\
     \x20 --telemetry[=FORMAT] print a run report to stderr; FORMAT is\n\
     \x20                      `table` (default) or `json`. The env var\n\
     \x20                      QBEEP_TELEMETRY=json|table does the same.\n\
     \x20 --trace FILE         write the run's event timeline as Chrome\n\
     \x20                      trace_event JSON (open in ui.perfetto.dev\n\
     \x20                      or chrome://tracing)\n\
     \x20 --events             stream the event timeline as JSONL on stderr\n\
     \x20 --metrics[=FORMAT]   print a labeled-metrics exposition on stderr\n\
     \x20                      after the run; FORMAT is `prom` (default,\n\
     \x20                      Prometheus text format 0.0.4) or `jsonl`.\n\
     \x20                      The env var QBEEP_METRICS does the same\n\
     \x20 --introspect ADDR    serve a live introspection plane on ADDR\n\
     \x20                      (e.g. 127.0.0.1:9090; :0 picks a free port,\n\
     \x20                      printed on stderr) for the duration of the\n\
     \x20                      run: GET /metrics (Prometheus text 0.0.4),\n\
     \x20                      /healthz, /profile (continuous-profiling\n\
     \x20                      JSON: per-stage wall/alloc, worker\n\
     \x20                      utilization, RSS), /flights (pending\n\
     \x20                      incidents). Also arms the allocation\n\
     \x20                      profiler and attaches a profile section to\n\
     \x20                      the --telemetry report. Env QBEEP_INTROSPECT\n\
     \x20                      does the same\n\
     \x20 --flight-dir DIR     write flight-recorder incidents (panicked\n\
     \x20                      jobs, watchdog degradations, injected\n\
     \x20                      faults) as *.flight.json black boxes in DIR;\n\
     \x20                      env QBEEP_FLIGHT_DIR does the same\n\
     \x20 --flight PATH        (inspect) a *.flight.json dump, or a\n\
     \x20                      directory of them, to render\n\
     \x20 --metrics FILE       (inspect) a metrics snapshot JSON to render\n\
     \x20 --last N             (inspect) show only each dump's last N\n\
     \x20                      events (default 0 = all)\n\
     \x20 --help               print this message and exit"
        .to_string()
}

/// How a run report gets printed, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TelemetryFormat {
    Json,
    Table,
}

/// Resolves the telemetry setting: the `--telemetry` flag wins over the
/// `QBEEP_TELEMETRY` environment variable; both accept json/table and
/// the usual off-switch spellings.
fn telemetry_format(flags: &BTreeMap<String, String>) -> Result<Option<TelemetryFormat>, String> {
    let raw = match flags.get("telemetry") {
        Some(value) => value.clone(),
        None => match std::env::var("QBEEP_TELEMETRY") {
            Ok(value) => value,
            Err(_) => return Ok(None),
        },
    };
    match raw.as_str() {
        "json" => Ok(Some(TelemetryFormat::Json)),
        "" | "table" | "1" | "true" | "on" => Ok(Some(TelemetryFormat::Table)),
        "0" | "false" | "off" | "none" => Ok(None),
        other => Err(format!(
            "bad telemetry format '{other}' (expected json or table); \
             run `qbeep-cli --help` for the flag list"
        )),
    }
}

/// How a metrics exposition gets printed, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Prom,
    Jsonl,
}

/// Resolves the metrics setting: the `--metrics` flag wins over the
/// `QBEEP_METRICS` environment variable; both accept prom/jsonl and
/// the usual off-switch spellings.
fn metrics_format(flags: &BTreeMap<String, String>) -> Result<Option<MetricsFormat>, String> {
    let raw = match flags.get("metrics") {
        Some(value) => value.clone(),
        None => match std::env::var("QBEEP_METRICS") {
            Ok(value) => value,
            Err(_) => return Ok(None),
        },
    };
    match raw.as_str() {
        "" | "prom" | "prometheus" | "1" | "true" | "on" => Ok(Some(MetricsFormat::Prom)),
        "jsonl" | "json" => Ok(Some(MetricsFormat::Jsonl)),
        "0" | "false" | "off" | "none" => Ok(None),
        other => Err(format!(
            "bad metrics format '{other}' (expected prom or jsonl); \
             run `qbeep-cli --help` for the flag list"
        )),
    }
}

/// The resolved observability request of one invocation: the report
/// format (if any), the Chrome-trace output path (if any), whether to
/// stream JSONL events, the metrics exposition format (if any), where
/// flight-recorder incidents should land, and the recorder the command
/// should drive — enabled iff any of them was asked for. The flight
/// recorder itself is always on: it is a bounded ring, so arming it
/// costs nothing until an incident actually fires.
struct Observability {
    format: Option<TelemetryFormat>,
    trace: Option<String>,
    events: bool,
    metrics_format: Option<MetricsFormat>,
    flight_dir: Option<PathBuf>,
    registry: MetricsRegistry,
    recorder: Recorder,
    /// Whether continuous profiling (allocation attribution, worker
    /// accounting, RSS sampling) is armed for this run.
    profiling: bool,
    /// When the run started, for utilization denominators.
    started: std::time::Instant,
    /// Background RSS sampler, running while profiling is armed.
    rss_sampler: Option<RssSampler>,
    /// The live introspection plane, held so it serves until the run
    /// finishes; its Drop performs the graceful shutdown.
    _introspect: Option<IntrospectServer>,
}

/// Resolves the introspection bind address: the `--introspect` flag
/// wins over the `QBEEP_INTROSPECT` environment variable; off-switch
/// spellings disable it.
fn introspect_addr(flags: &BTreeMap<String, String>) -> Option<String> {
    flags
        .get("introspect")
        .cloned()
        .or_else(|| std::env::var(qbeep::telemetry::INTROSPECT_ENV).ok())
        .filter(|raw| !matches!(raw.as_str(), "" | "0" | "false" | "off" | "none"))
}

impl Observability {
    fn from_flags(flags: &BTreeMap<String, String>) -> Result<Self, String> {
        let format = telemetry_format(flags)?;
        let trace = flags.get("trace").cloned();
        let events = flags.contains_key("events");
        let metrics_format = metrics_format(flags)?;
        let introspect_addr = introspect_addr(flags);
        let flight_dir = flags
            .get("flight-dir")
            .map(PathBuf::from)
            .or_else(|| std::env::var_os("QBEEP_FLIGHT_DIR").map(PathBuf::from));
        // The introspection plane needs live metrics and span stats to
        // serve, so `--introspect` implies an enabled registry and
        // recorder even when no exposition was asked for.
        let registry = if metrics_format.is_some() || introspect_addr.is_some() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        qbeep::core::describe_metric_families(&registry);
        let base = if format.is_some()
            || trace.is_some()
            || events
            || metrics_format.is_some()
            || introspect_addr.is_some()
        {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        let flight = FlightRecorder::new();
        let recorder = base
            .with_metrics(registry.clone())
            .with_flight(flight.clone());
        let profiling = introspect_addr.is_some();
        let mut rss_sampler = None;
        let mut introspect = None;
        if let Some(addr) = introspect_addr {
            qbeep::telemetry::reset_profile();
            qbeep::telemetry::set_profiling(true);
            let sampler = RssSampler::start(std::time::Duration::from_millis(200));
            let server = IntrospectServer::start(
                &addr,
                IntrospectSources {
                    metrics: registry.clone(),
                    flight: flight.clone(),
                    recorder: recorder.clone(),
                    rss: Some(sampler.handle()),
                },
            )
            .map_err(|e| format!("cannot bind introspection server on {addr}: {e}"))?;
            eprintln!(
                "// introspect: listening on http://{} (/metrics /healthz /profile /flights)",
                server.local_addr()
            );
            rss_sampler = Some(sampler);
            introspect = Some(server);
        }
        Ok(Self {
            format,
            trace,
            events,
            metrics_format,
            flight_dir,
            registry,
            recorder,
            profiling,
            started: std::time::Instant::now(),
            rss_sampler,
            _introspect: introspect,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Emits everything that was requested, in stream-then-summary
    /// order: the JSONL event lines, the run report, and the metrics
    /// exposition on stderr, plus the Chrome trace to `--trace`'s path
    /// — then persists any flight-recorder incidents. `manifest` is
    /// attached to the report and backfilled onto incident dumps that
    /// were captured before provenance was known.
    fn finish(&self, manifest: Option<ProvenanceManifest>) -> Result<(), String> {
        if self.events {
            eprint!("{}", self.recorder.events().to_jsonl());
        }
        if let Some(path) = &self.trace {
            std::fs::write(path, self.recorder.events().to_chrome_trace())
                .map_err(|e| format!("cannot write trace {path}: {e}"))?;
            eprintln!("// trace written to {path}");
        }
        if let Some(format) = self.format {
            let mut report = self.recorder.report();
            if let Some(manifest) = manifest.clone() {
                report = report.with_manifest(manifest);
            }
            if self.profiling {
                let profile = ProfileReport::collect(
                    self.started.elapsed(),
                    &report.spans,
                    self.rss_sampler.as_ref().map(RssSampler::stats),
                );
                report = report.with_profile(profile);
            }
            match format {
                TelemetryFormat::Json => match serde_json::to_string_pretty(&report) {
                    Ok(json) => eprintln!("{json}"),
                    Err(e) => return Err(format!("cannot serialize run report: {e}")),
                },
                TelemetryFormat::Table => eprint!("{}", report.render_table()),
            }
        }
        if let Some(format) = self.metrics_format {
            // Memory gauges are point-in-time platform readings; absent
            // procfs (non-Linux) they are simply omitted. The same
            // helper stamps them for live `/metrics` scrapes, so the
            // exit exposition matches the introspection plane's.
            qbeep::telemetry::stamp_memory_gauges(&self.registry);
            let snapshot = self.registry.snapshot();
            match format {
                MetricsFormat::Prom => eprint!("{}", snapshot.to_prometheus()),
                MetricsFormat::Jsonl => eprint!("{}", snapshot.to_jsonl()),
            }
        }
        self.flush_flight(manifest.as_ref());
        Ok(())
    }

    /// Persists incidents still queued in the flight recorder (a
    /// session may already have flushed its own). Without a flight
    /// directory the incidents are counted on stderr so a crashed run
    /// leaves at least a pointer to the evidence it could have saved.
    fn flush_flight(&self, manifest: Option<&ProvenanceManifest>) {
        let flight = self.recorder.flight();
        let incidents = flight.incident_count();
        if incidents == 0 {
            return;
        }
        match &self.flight_dir {
            Some(dir) => {
                let mut dumps = flight.drain_incidents();
                for dump in &mut dumps {
                    if dump.manifest.is_none() {
                        dump.manifest = manifest.cloned();
                    }
                }
                for path in qbeep::core::write_flight_dumps(dir, &dumps, &self.recorder) {
                    eprintln!("// flight dump written to {path}");
                }
            }
            None => eprintln!(
                "// {incidents} incident(s) captured; pass --flight-dir DIR to \
                 keep *.flight.json black boxes"
            ),
        }
    }
}

fn load_backend(flags: &BTreeMap<String, String>, recorder: &Recorder) -> Result<Backend, String> {
    let name = flags.get("backend").ok_or("missing --backend")?;
    let backend = profiles::by_name(name).ok_or_else(|| {
        format!("unknown backend '{name}'; run `qbeep-cli backends` for the list")
    })?;
    Ok(apply_calibration_fault(backend, recorder))
}

/// The calibration-load fault site: corrupts the snapshot as the armed
/// injector dictates, then clamp-and-warn sanitizes the result — so an
/// injected zero-T1 or missing-qubit snapshot degrades to a usable
/// backend with a warning instead of propagating garbage.
fn apply_calibration_fault(backend: Backend, recorder: &Recorder) -> Backend {
    use qbeep::core::faults::{self, FaultKind, FaultSite};
    use qbeep::device::Calibration;

    let Some(kind) = faults::fire_recorded(FaultSite::CalibrationLoad, recorder) else {
        return backend;
    };
    let cal = backend.calibration().clone();
    let mut qubits = cal.qubits().to_vec();
    match kind {
        FaultKind::ZeroT1T2 => {
            for q in &mut qubits {
                q.t1_us = 0.0;
                q.t2_us = 0.0;
            }
        }
        FaultKind::MissingQubit => {
            qubits.pop();
        }
        FaultKind::PoisonNan => {
            if let Some(q) = qubits.first_mut() {
                q.readout_error = f64::NAN;
            }
        }
        // The remaining kinds have no calibration analogue; they are
        // inert at this site.
        _ => return backend,
    }
    let poisoned = Calibration::from_parts_unchecked(
        qubits,
        cal.sq_gates().to_vec(),
        cal.cx_edges().map(|(k, g)| (k, *g)).collect(),
    );
    let (fixed, issues) = backend.with_calibration_sanitized(poisoned);
    for issue in &issues {
        eprintln!("// calibration clamped: {issue}");
    }
    fixed
}

fn load_circuit(flags: &BTreeMap<String, String>) -> Result<Circuit, String> {
    let path = flags.get("qasm").ok_or("missing --qasm")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_qasm(&source).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_counts(flags: &BTreeMap<String, String>) -> Result<Counts, String> {
    let path = flags.get("counts").ok_or("missing --counts")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let table: BTreeMap<String, u64> =
        serde_json::from_str(&source).map_err(|e| format!("bad counts JSON in {path}: {e}"))?;
    let Some(width) = table.keys().next().map(String::len) else {
        return Err(format!("{path} holds no counts"));
    };
    let mut counts = Counts::new(width);
    for (bits, n) in table {
        if bits.len() != width {
            return Err(format!("mixed widths in {path}: '{bits}' vs {width}"));
        }
        let s: BitString = bits
            .parse()
            .map_err(|e| format!("bad bit-string '{bits}': {e}"))?;
        counts.record(s, n);
    }
    Ok(counts)
}

fn config_from_flags(flags: &BTreeMap<String, String>) -> Result<QBeepConfig, String> {
    let mut config = QBeepConfig::default();
    if let Some(iters) = flags.get("iterations") {
        config.iterations = iters
            .parse()
            .map_err(|_| format!("bad --iterations '{iters}'"))?;
    }
    if let Some(eps) = flags.get("epsilon") {
        config.epsilon = eps.parse().map_err(|_| format!("bad --epsilon '{eps}'"))?;
    }
    if let Some(cap) = flags.get("max-iters") {
        config.max_iters = Some(
            cap.parse()
                .map_err(|_| format!("bad --max-iters '{cap}'"))?,
        );
    }
    if let Some(budget) = flags.get("time-budget-ms") {
        config.time_budget_ms = Some(
            budget
                .parse()
                .map_err(|_| format!("bad --time-budget-ms '{budget}'"))?,
        );
    }
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

fn counts_to_json(probs: &[(BitString, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (s, p)) in probs.iter().enumerate() {
        out.push_str(&format!(
            "  \"{s}\": {p:.6}{}\n",
            if i + 1 < probs.len() { "," } else { "" }
        ));
    }
    out.push('}');
    out
}

fn cmd_backends() -> Result<(), String> {
    println!(
        "{:>18} {:>7} {:>7} {:>10}",
        "name", "qubits", "edges", "mean_cx_err"
    );
    let mut fleet = profiles::ibmq_fleet();
    fleet.push(profiles::ionq());
    fleet.push(profiles::sycamore());
    for b in fleet {
        println!(
            "{:>18} {:>7} {:>7} {:>10.5}",
            b.name(),
            b.num_qubits(),
            b.topology().num_edges(),
            b.calibration().mean_cx_error().unwrap_or(f64::NAN)
        );
    }
    Ok(())
}

fn cmd_transpile(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let obs = Observability::from_flags(flags)?;
    let backend = load_backend(flags, obs.recorder())?;
    let circuit = load_circuit(flags)?;
    let t = Transpiler::new(&backend)
        .transpile_recorded(&circuit, obs.recorder())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "// {} on {}: {} gates ({} CX), depth {}, {:.2} µs, λ = {:.4}",
        circuit.name(),
        backend.name(),
        t.gate_count(),
        t.cx_count(),
        t.schedule().depth,
        t.duration_ns() / 1000.0,
        qbeep::core::lambda::estimate_lambda(&t, &backend),
    );
    println!("{}", t.circuit().to_qasm());
    let manifest = provenance::manifest(&QBeepConfig::default(), Some(&backend), Some(&t), None);
    obs.finish(Some(manifest))
}

fn cmd_run(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let obs = Observability::from_flags(flags)?;
    let backend = load_backend(flags, obs.recorder())?;
    let circuit = load_circuit(flags)?;
    let shots: u64 = flags.get("shots").map_or(Ok(4000), |s| {
        s.parse().map_err(|_| format!("bad --shots '{s}'"))
    })?;
    let seed: u64 = flags.get("seed").map_or(Ok(0), |s| {
        s.parse().map_err(|_| format!("bad --seed '{s}'"))
    })?;
    let config = config_from_flags(flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let run = execute_on_device_recorded(
        &circuit,
        &backend,
        shots,
        &EmpiricalConfig::default(),
        &mut rng,
        obs.recorder(),
    )
    .map_err(|e| e.to_string())?;
    // The sampling fault site: emptied or truncated counts must flow
    // through printing (and the telemetry mitigation preview) without
    // a panic.
    let counts = {
        use qbeep::core::faults::{self, FaultKind, FaultSite};
        match faults::fire_recorded(FaultSite::SimSampling, obs.recorder()) {
            Some(FaultKind::EmptyCounts) => Counts::new(run.counts.width()),
            Some(FaultKind::TruncateCounts(keep)) => Counts::from_pairs(
                run.counts.width(),
                run.counts.sorted_by_count().into_iter().take(keep),
            ),
            _ => run.counts.clone(),
        }
    };
    eprintln!(
        "// simulated {} shots on {} (λ* = {:.4})",
        shots,
        backend.name(),
        run.lambda_true
    );
    if counts.is_empty() {
        eprintln!("// warning: counts table is empty, skipping mitigation preview");
    } else if obs.recorder().is_enabled() {
        // Mitigate as well, so the report covers the full pipeline —
        // λ breakdown, graph build and per-iteration series — while
        // stdout still carries only the raw counts.
        let (result, degradation) = QBeep::new(config)
            .with_recorder(obs.recorder().clone())
            .mitigate_run_guarded(&counts, &run.transpiled, &backend);
        eprintln!(
            "// mitigated: λ = {:.4}, graph {} vertices / {} edges, {} iterations",
            result.lambda,
            result.diagnostics.vertices,
            result.diagnostics.edges,
            result.diagnostics.iterations,
        );
        if let Some(degradation) = degradation {
            eprintln!(
                "// warning: watchdog cut the run short ({}); the result is best-effort",
                degradation.tag()
            );
        }
    }
    let rows = counts.sorted_by_count();
    let mut out = String::from("{\n");
    for (i, (s, c)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  \"{s}\": {c}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push('}');
    println!("{out}");
    let manifest = provenance::manifest(&config, Some(&backend), Some(&run.transpiled), Some(seed));
    obs.finish(Some(manifest))
}

/// The strategy names one `mitigate` invocation should run: the
/// `--strategy` primary (default `qbeep`) first, then every
/// deduplicated `--compare` entry.
fn strategy_names(flags: &BTreeMap<String, String>) -> (String, Vec<String>) {
    let primary = flags
        .get("strategy")
        .cloned()
        .unwrap_or_else(|| "qbeep".to_string());
    let mut names = vec![primary.clone()];
    if let Some(compare) = flags.get("compare") {
        for name in compare.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
    }
    (primary, names)
}

/// One stderr summary line per strategy outcome.
fn describe_outcome(outcome: &qbeep::core::MitigationOutcome) -> String {
    match &outcome.diagnostics {
        StrategyDiagnostics::Graph(d) => {
            let lambda = outcome
                .lambda
                .map_or_else(|| "-".to_string(), |l| format!("{l:.4}"));
            format!(
                "λ = {lambda}, state graph {} vertices / {} edges",
                d.vertices, d.edges
            )
        }
        StrategyDiagnostics::Hammer {
            support,
            max_distance,
            decay,
        } => format!("{support} outcomes, neighbourhood ≤ {max_distance}, decay {decay}"),
        StrategyDiagnostics::Readout {
            iterations,
            support,
        } => format!("{iterations} EM iterations over {support} outcomes"),
        StrategyDiagnostics::None => "raw empirical distribution".to_string(),
    }
}

fn cmd_mitigate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let counts = load_counts(flags)?;
    let config = config_from_flags(flags)?;
    let obs = Observability::from_flags(flags)?;
    let (primary, names) = strategy_names(flags);

    // Per-job context: an explicit λ wins; otherwise the transpiled
    // circuit and backend feed Eq.-2 estimation inside the session.
    let mut job = MitigationJob::new("cli", counts);
    let mut session_backend = None;
    let mut manifest = provenance::manifest(&config, None, None, None);
    if let Some(lambda) = flags.get("lambda") {
        let lambda: f64 = lambda
            .parse()
            .map_err(|_| format!("bad --lambda '{lambda}'"))?;
        job = job.with_lambda(lambda);
    } else if flags.contains_key("backend") || flags.contains_key("qasm") {
        let backend = load_backend(flags, obs.recorder()).map_err(|e| {
            format!("{e} (λ estimation needs --qasm and --backend, or pass --lambda)")
        })?;
        let circuit = load_circuit(flags)?;
        let t = Transpiler::new(&backend)
            .transpile_recorded(&circuit, obs.recorder())
            .map_err(|e| e.to_string())?;
        manifest = provenance::manifest(&config, Some(&backend), Some(&t), None);
        job = job.with_transpiled(t);
        session_backend = Some(backend);
    }

    let mut session = match session_backend {
        Some(backend) => MitigationSession::on_backend(backend),
        None => MitigationSession::new(),
    }
    .with_recorder(obs.recorder().clone())
    .with_manifest(manifest.clone());
    if let Some(dir) = &obs.flight_dir {
        // Hand the directory to the session too, so incidents are
        // persisted even when the run aborts before `finish()`.
        session = session.with_flight_dir(dir);
    }
    for name in &names {
        let spec = StrategySpec {
            name: name.clone(),
            iterations: flags
                .get("iterations")
                .map(|s| s.parse().map_err(|_| format!("bad --iterations '{s}'")))
                .transpose()?,
            epsilon: flags
                .get("epsilon")
                .map(|s| s.parse().map_err(|_| format!("bad --epsilon '{s}'")))
                .transpose()?,
            max_iters: flags
                .get("max-iters")
                .map(|s| s.parse().map_err(|_| format!("bad --max-iters '{s}'")))
                .transpose()?,
            time_budget_ms: flags
                .get("time-budget-ms")
                .map(|s| s.parse().map_err(|_| format!("bad --time-budget-ms '{s}'")))
                .transpose()?,
            ..StrategySpec::default()
        };
        session
            .add_strategy_spec(&spec)
            .map_err(|e| format!("{e}; run `qbeep-cli --help` for the flag list"))?;
    }
    session.add_job(job);

    let report = session
        .run()
        .map_err(|e| format!("{e} (pass --lambda, or --qasm with --backend)"))?;
    for path in &report.flight_files {
        eprintln!("// flight dump written to {path}");
    }
    let outcome = report
        .outcome("cli", &primary)
        .ok_or_else(|| format!("strategy '{primary}' produced no outcome"))?;
    eprintln!("// {}", describe_outcome(outcome));
    if let Some(degradation) = outcome.degradation {
        eprintln!(
            "// warning: watchdog cut the run short ({}); \
             the result is best-effort",
            degradation.tag()
        );
    }
    for name in names.iter().filter(|n| **n != primary) {
        let other = report
            .outcome("cli", name)
            .ok_or_else(|| format!("strategy '{name}' produced no outcome"))?;
        eprintln!(
            "// {name}: {}, Δtv vs {primary} = {:.4}",
            describe_outcome(other),
            other.mitigated.total_variation(&outcome.mitigated),
        );
    }
    println!("{}", counts_to_json(&outcome.mitigated.sorted_by_prob()));
    obs.finish(Some(manifest))
}

/// Collects the flight-dump files `--flight` points at: the file
/// itself, or every `*.flight.json` inside a directory — sorted by
/// name, which for engine-written dumps sorts by capture index. An
/// empty or missing directory is not an error — a clean run leaves no
/// black boxes, so `inspect` reports "nothing to show" with exit 0
/// rather than failing the caller's post-mortem script.
fn collect_flight_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().ends_with(".flight.json"))
            })
            .collect();
        files.sort();
        Ok(files)
    } else if path.exists() {
        Ok(vec![path.to_path_buf()])
    } else {
        Ok(Vec::new())
    }
}

/// Renders a metrics snapshot as an indented human-readable summary,
/// histograms condensed to count/sum/mean rather than raw buckets.
fn render_metrics_summary(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        if family.samples.is_empty() {
            continue;
        }
        out.push_str(&format!("{} ({})", family.name, family.kind.as_str()));
        if !family.help.is_empty() {
            out.push_str(&format!(" — {}", family.help));
        }
        out.push('\n');
        for sample in &family.samples {
            let labels = if sample.labels.is_empty() {
                "(no labels)".to_string()
            } else {
                sample.labels.render()
            };
            match &sample.value {
                SampleValue::Counter(v) => out.push_str(&format!("  {labels} = {v}\n")),
                SampleValue::Gauge(v) => out.push_str(&format!("  {labels} = {v}\n")),
                SampleValue::Histogram(h) => {
                    let mean = if h.count > 0 {
                        h.sum / h.count as f64
                    } else {
                        0.0
                    };
                    out.push_str(&format!(
                        "  {labels} count {} sum {:.3} mean {mean:.3}\n",
                        h.count, h.sum
                    ));
                }
            }
        }
    }
    out
}

/// `qbeep-cli inspect` — renders persisted observability artifacts
/// (flight dumps and metrics snapshots) into a human-readable incident
/// report on stdout.
fn cmd_inspect(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let last: usize = flags.get("last").map_or(Ok(0), |s| {
        s.parse().map_err(|_| format!("bad --last '{s}'"))
    })?;
    let flight = flags.get("flight").filter(|v| !v.is_empty());
    let metrics = flags.get("metrics").filter(|v| !v.is_empty());
    if flight.is_none() && metrics.is_none() {
        return Err("inspect needs --flight FILE|DIR and/or --metrics FILE; \
             run `qbeep-cli --help` for the flag list"
            .to_string());
    }
    let mut first_section = true;
    if let Some(path) = flight {
        let files = collect_flight_files(Path::new(path))?;
        if files.is_empty() {
            println!("no flight recordings found in {path}");
            first_section = false;
        }
        for file in files {
            if !first_section {
                println!();
            }
            first_section = false;
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let dump = FlightDump::from_json(&text)
                .map_err(|e| format!("{} is not a flight dump: {e}", file.display()))?;
            println!("==> {}", file.display());
            print!("{}", dump.render_report(last));
        }
    }
    if let Some(path) = metrics {
        if !first_section {
            println!();
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let snapshot: MetricsSnapshot = serde_json::from_str(&text)
            .map_err(|e| format!("{path} is not a metrics snapshot JSON: {e}"))?;
        println!("==> {path}");
        print!("{}", render_metrics_summary(&snapshot));
    }
    Ok(())
}

/// Applies the `--threads` knob (falling back to `QBEEP_THREADS`,
/// which `qbeep-par` reads on its own). Asking for more than one
/// thread on a build without the `parallel` feature is accepted but
/// warned about: every hot-path call site then takes its serial
/// branch, which produces identical results anyway.
fn configure_threads(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let requested = match flags.get("threads") {
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|_| format!("bad --threads '{raw}' (expected a positive integer)"))?;
            if n == 0 {
                return Err("bad --threads '0' (expected a positive integer)".to_string());
            }
            qbeep::par::set_threads(Some(n));
            n
        }
        None => qbeep::par::current_threads(),
    };
    if requested > 1 && !qbeep::core::parallel_enabled() {
        eprintln!(
            "// warning: {requested} threads requested but this build lacks the \
             parallel feature; running serially (results are identical)"
        );
    }
    Ok(())
}

/// Arms the fault injector from `--faults`/`--fault-seed` (falling
/// back to `QBEEP_FAULTS`/`QBEEP_FAULT_SEED`). A malformed spec is a
/// hard error; a spec on a build without the `fault-injection` feature
/// is accepted but warned about, since it cannot fire.
fn arm_faults(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use qbeep::core::faults;

    let armed = if let Some(spec) = flags.get("faults") {
        let seed = flags
            .get("fault-seed")
            .map(|s| s.parse().map_err(|_| format!("bad --fault-seed '{s}'")))
            .transpose()?
            .unwrap_or(0);
        let injector = faults::FaultInjector::with_seed(spec, seed).map_err(|e| e.to_string())?;
        let clauses = injector.clauses();
        faults::install(injector);
        clauses
    } else {
        faults::init_from_env().map_err(|e| e.to_string())?
    };
    if armed > 0 && !faults::enabled() {
        eprintln!(
            "// warning: {armed} fault clause(s) armed but this build lacks \
             the fault-injection feature; they will never fire"
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if options.command == "help"
        || options.command == "--help"
        || options.flags.contains_key("help")
    {
        println!("{}", long_usage());
        return ExitCode::SUCCESS;
    }
    if let Err(e) = configure_threads(&options.flags).and_then(|()| arm_faults(&options.flags)) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result =
        match options.command.as_str() {
            "backends" => validate_flags("backends", &options.flags).and_then(|()| cmd_backends()),
            "transpile" => validate_flags("transpile", &options.flags)
                .and_then(|()| cmd_transpile(&options.flags)),
            "run" => validate_flags("run", &options.flags).and_then(|()| cmd_run(&options.flags)),
            "mitigate" => validate_flags("mitigate", &options.flags)
                .and_then(|()| cmd_mitigate(&options.flags)),
            "inspect" => {
                validate_flags("inspect", &options.flags).and_then(|()| cmd_inspect(&options.flags))
            }
            other => Err(format!("unknown command '{other}'\n{}", usage())),
        };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
