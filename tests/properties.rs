//! Property-based tests of the core data structures and invariants.

use proptest::prelude::*;
use qbeep::bitstring::{BitString, Counts};
use qbeep::core::model::{poisson_pmf, SpectrumModel};
use qbeep::core::{QBeep, QBeepConfig};

/// Strategy: a bit-string of 1..=16 bits.
fn arb_bitstring() -> impl Strategy<Value = BitString> {
    (1usize..=16, any::<u64>()).prop_map(|(len, v)| BitString::from_value(u128::from(v), len))
}

/// Strategy: two equal-length bit-strings.
fn arb_pair() -> impl Strategy<Value = (BitString, BitString)> {
    (1usize..=16, any::<u64>(), any::<u64>()).prop_map(|(len, a, b)| {
        (
            BitString::from_value(u128::from(a), len),
            BitString::from_value(u128::from(b), len),
        )
    })
}

/// Strategy: a non-empty count table over 4-bit outcomes.
fn arb_counts() -> impl Strategy<Value = Counts> {
    proptest::collection::vec((0u64..16, 1u64..500), 1..12).prop_map(|pairs| {
        Counts::from_pairs(
            4,
            pairs
                .into_iter()
                .map(|(v, c)| (BitString::from_value(u128::from(v), 4), c)),
        )
    })
}

proptest! {
    #[test]
    fn bitstring_display_parse_round_trip(s in arb_bitstring()) {
        let text = s.to_string();
        let back: BitString = text.parse().unwrap();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn hamming_distance_is_a_metric(
        (a, b) in arb_pair(),
        c_raw in any::<u64>(),
    ) {
        let c = BitString::from_value(u128::from(c_raw), a.len());
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
    }

    #[test]
    fn xor_weight_equals_distance((a, b) in arb_pair()) {
        prop_assert_eq!(a.xor(&b).hamming_weight(), a.hamming_distance(&b));
    }

    #[test]
    fn flip_changes_distance_by_one(s in arb_bitstring(), idx in any::<prop::sample::Index>()) {
        let i = idx.index(s.len());
        let t = s.with_flipped(i);
        prop_assert_eq!(s.hamming_distance(&t), 1);
        prop_assert_eq!(t.with_flipped(i), s);
    }

    #[test]
    fn counts_distribution_normalises(counts in arb_counts()) {
        let d = counts.to_distribution();
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
        for (s, p) in d.iter() {
            prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
            prop_assert!(counts.get(s) > 0);
        }
    }

    #[test]
    fn metric_bounds_hold(counts_a in arb_counts(), counts_b in arb_counts()) {
        let p = counts_a.to_distribution();
        let q = counts_b.to_distribution();
        let fid = p.fidelity(&q);
        let hel = p.hellinger(&q);
        let tvd = p.total_variation(&q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fid));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&hel));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&tvd));
        // Symmetry.
        prop_assert!((fid - q.fidelity(&p)).abs() < 1e-9);
        prop_assert!((hel - q.hellinger(&p)).abs() < 1e-7);
        // Self-distance.
        prop_assert!((p.fidelity(&p) - 1.0).abs() < 1e-9);
        // Hellinger amplifies float error by a square root: √(1 − Σp)
        // can reach √ε ≈ 1e-8 even for an exact self-comparison.
        prop_assert!(p.hellinger(&p) < 1e-7);
        // Fidelity–Hellinger consistency: F = (1 − H²)².
        prop_assert!((fid - (1.0 - hel * hel).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn spectrum_mass_is_conserved(counts in arb_counts(), reference in 0u64..16) {
        let r = BitString::from_value(u128::from(reference), 4);
        let spec = counts.to_distribution().hamming_spectrum(&r);
        let total: f64 = spec.masses().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(spec.expected_distance() <= 4.0);
    }

    #[test]
    fn poisson_pmf_is_a_distribution(lambda in 0.01f64..20.0) {
        let total: f64 = (0..200).map(|k| poisson_pmf(lambda, k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Mean matches λ.
        let mean: f64 = (0..200).map(|k| k as f64 * poisson_pmf(lambda, k)).sum();
        prop_assert!((mean - lambda).abs() < 1e-6 * lambda.max(1.0));
    }

    #[test]
    fn spectrum_models_normalise(width in 2usize..20, lambda in 0.01f64..8.0) {
        for model in [
            SpectrumModel::poisson(width, lambda),
            SpectrumModel::binomial(width, (lambda / width as f64).min(1.0)),
            SpectrumModel::uniform(width),
            SpectrumModel::hammer_weighting(width),
        ] {
            let total: f64 = model.masses().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "{}", model.name());
        }
    }

    #[test]
    fn mitigation_conserves_mass_and_stays_valid(
        counts in arb_counts(),
        lambda in 0.0f64..4.0,
    ) {
        let result = QBeep::default().mitigate_with_lambda(&counts, lambda);
        prop_assert!((result.mitigated.total_mass() - 1.0).abs() < 1e-9);
        // Support never grows: Q-BEEP only reclassifies observed strings.
        prop_assert!(result.mitigated.support_size() <= counts.distinct());
        for (s, _) in result.mitigated.iter() {
            prop_assert!(counts.get(s) > 0, "invented outcome {s}");
        }
    }

    #[test]
    fn mitigation_is_deterministic(counts in arb_counts(), lambda in 0.0f64..4.0) {
        let a = QBeep::default().mitigate_with_lambda(&counts, lambda);
        let b = QBeep::default().mitigate_with_lambda(&counts, lambda);
        prop_assert_eq!(a.mitigated, b.mitigated);
    }

    #[test]
    fn overflow_renormalisation_never_goes_negative(
        counts in arb_counts(),
        lambda in 0.0f64..4.0,
        iterations in 1usize..40,
    ) {
        let cfg = QBeepConfig { iterations, ..QBeepConfig::default() };
        let result = QBeep::new(cfg).mitigate_with_lambda(&counts, lambda);
        for (_, p) in result.mitigated.iter() {
            prop_assert!(p >= 0.0);
        }
    }
}
