//! Golden-fixture regression suite: every registry strategy must
//! reproduce its pinned output distribution on a fixed counts +
//! calibration fixture to 1e-12.
//!
//! Fixtures live under `tests/fixtures/golden/` as plain text so the
//! suite has zero runtime dependencies (no randomness, no JSON):
//!
//! * `counts.txt` — `<bitstring> <count>` lines;
//! * `calibration.txt` — one readout flip probability per bit (feeds
//!   the IBU strategy's explicit [`ReadoutModel`]);
//! * `expected_<strategy>.txt` — `<bitstring> <probability>` lines,
//!   probabilities printed with 17 significant digits so an `f64`
//!   round-trips exactly.
//!
//! Regenerate the expectations after an intentional numeric change
//! with `QBEEP_REGEN_GOLDEN=1 cargo test --test golden_strategies`.

use std::path::{Path, PathBuf};

use qbeep::bitstring::{Counts, Distribution};
use qbeep::core::readout::ReadoutModel;
use qbeep::core::{IbuReadoutStrategy, MitigationJob, MitigationSession};

/// Absolute per-outcome probability tolerance.
const TOLERANCE: f64 = 1e-12;

/// The fixture job's externally supplied Poisson rate.
const LAMBDA: f64 = 1.7;

/// Registry strategies exercised straight from their names. `ibu` is
/// added separately with the fixture calibration, since the by-name
/// factory derives its confusion model from a backend snapshot the
/// fixture deliberately does not carry.
const BY_NAME: [&str; 6] = [
    "qbeep",
    "hammer",
    "binomial",
    "neg-binomial",
    "uniform",
    "identity",
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden")
}

/// Non-comment, non-blank lines of a fixture file.
fn fixture_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

fn read_counts(path: &Path) -> Counts {
    let mut pairs = Vec::new();
    let mut width = 0;
    for line in fixture_lines(path) {
        let mut parts = line.split_whitespace();
        let bits = parts.next().expect("bitstring column");
        let count: u64 = parts
            .next()
            .expect("count column")
            .parse()
            .expect("integer count");
        width = bits.len();
        pairs.push((bits.parse().expect("valid bitstring"), count));
    }
    assert!(!pairs.is_empty(), "empty counts fixture");
    Counts::from_pairs(width, pairs)
}

fn read_calibration(path: &Path) -> Vec<f64> {
    fixture_lines(path)
        .iter()
        .map(|l| l.parse().expect("flip probability"))
        .collect()
}

fn read_expected(path: &Path) -> Vec<(String, f64)> {
    fixture_lines(path)
        .iter()
        .map(|line| {
            let mut parts = line.split_whitespace();
            let bits = parts.next().expect("bitstring column").to_string();
            let prob: f64 = parts
                .next()
                .expect("probability column")
                .parse()
                .expect("float probability");
            (bits, prob)
        })
        .collect()
}

/// Serialises a distribution in its canonical order with enough
/// digits for exact `f64` round-tripping.
fn render_distribution(dist: &Distribution) -> String {
    let mut out = String::new();
    for (s, p) in dist.sorted_by_prob() {
        out.push_str(&format!("{s} {p:.17e}\n"));
    }
    out
}

#[test]
fn registry_strategies_match_golden_fixtures() {
    let dir = fixture_dir();
    let counts = read_counts(&dir.join("counts.txt"));
    let flips = read_calibration(&dir.join("calibration.txt"));
    assert_eq!(flips.len(), counts.width(), "calibration width mismatch");

    let mut session = MitigationSession::new();
    for name in BY_NAME {
        session.add_strategy_by_name(name).expect("known strategy");
    }
    session.add_strategy(Box::new(
        IbuReadoutStrategy::new(10)
            .expect("valid iteration count")
            .with_model(ReadoutModel::new(flips)),
    ));
    session.add_job(MitigationJob::new("golden", counts).with_lambda(LAMBDA));
    let report = session.run().expect("clean fixture run");

    let regen = std::env::var_os("QBEEP_REGEN_GOLDEN").is_some();
    let all_names: Vec<&str> = BY_NAME.iter().copied().chain(["ibu"]).collect();
    for name in all_names {
        let outcome = report
            .outcome("golden", name)
            .unwrap_or_else(|| panic!("strategy {name} produced no outcome"));
        let path = dir.join(format!("expected_{name}.txt"));
        if regen {
            let header = format!(
                "# Golden output of the '{name}' strategy on counts.txt \
                 (lambda {LAMBDA}).\n# Regenerate: QBEEP_REGEN_GOLDEN=1 \
                 cargo test --test golden_strategies\n"
            );
            std::fs::write(&path, header + &render_distribution(&outcome.mitigated))
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            continue;
        }
        let expected = read_expected(&path);
        assert_eq!(
            outcome.mitigated.support_size(),
            expected.len(),
            "{name}: support size changed (regen with QBEEP_REGEN_GOLDEN=1 \
             if intentional)"
        );
        for (bits, want) in &expected {
            let got = outcome
                .mitigated
                .prob(&bits.parse().expect("valid bitstring"));
            assert!(
                (got - want).abs() <= TOLERANCE,
                "{name}: prob({bits}) = {got:.17e}, pinned {want:.17e} \
                 (|Δ| = {:.3e} > {TOLERANCE:.0e}; regen with \
                 QBEEP_REGEN_GOLDEN=1 if intentional)",
                (got - want).abs()
            );
        }
    }
}

#[test]
fn golden_run_is_reproducible_within_a_process() {
    // The fixture run twice in one process must agree exactly —
    // guards against any hidden global state in the strategy stack.
    let dir = fixture_dir();
    let counts = read_counts(&dir.join("counts.txt"));
    let run = || {
        let mut session = MitigationSession::new();
        for name in BY_NAME {
            session.add_strategy_by_name(name).expect("known strategy");
        }
        session.add_job(MitigationJob::new("golden", counts.clone()).with_lambda(LAMBDA));
        let report = session.run().expect("clean fixture run");
        BY_NAME
            .iter()
            .map(|name| {
                report
                    .outcome("golden", name)
                    .expect("outcome present")
                    .mitigated
                    .sorted_by_prob()
                    .iter()
                    .map(|(s, p)| (s.to_string(), p.to_bits()))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
