//! Golden exposition test: the Prometheus text-format rendering of a
//! fixed, fully seeded session run is pinned byte for byte. This
//! guards the exposition contract end to end — family naming, label
//! sets, `# HELP`/`# TYPE` headers, sample ordering and value
//! formatting — so a scrape-side consumer never silently breaks.
//!
//! Only structurally deterministic families are pinned: timing
//! histograms (`*_ms`) vary with wall clock, the parallel dispatch
//! counter varies with thread count, and the peak-RSS gauge varies
//! with the platform, so all three are filtered out before comparing.
//!
//! Regenerate after an intentional change with
//! `QBEEP_REGEN_GOLDEN=1 cargo test --test golden_metrics`.

use std::path::{Path, PathBuf};

use qbeep::bitstring::Counts;
use qbeep::core::{MitigationJob, MitigationSession, StrategySpec};
use qbeep::telemetry::MetricsRegistry;

/// Families whose values depend on the environment rather than the
/// workload, excluded from the pin.
const ENV_DEPENDENT: [&str; 2] = ["qbeep_par_dispatch_total", "qbeep_peak_rss_bytes"];

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden/expected_metrics.prom")
}

/// The golden counts fixture shared with `golden_strategies`.
fn golden_counts() -> Counts {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden/counts.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let mut pairs = Vec::new();
    let mut width = 0;
    for line in text.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bits = parts.next().expect("bitstring column");
        let count: u64 = parts.next().expect("count column").parse().expect("count");
        width = bits.len();
        pairs.push((bits.parse().expect("valid bitstring"), count));
    }
    Counts::from_pairs(width, pairs)
}

/// Runs the pinned workload: five clean strategies plus a `qbeep`
/// configured to hit its iteration cap, so the exposition covers the
/// ok, degraded and watchdog families in one deterministic pass.
fn run_pinned_workload(registry: &MetricsRegistry) {
    let mut session = MitigationSession::new().with_metrics(registry.clone());
    session
        .add_strategy_spec(&StrategySpec {
            name: "qbeep".to_string(),
            max_iters: Some(1),
            ..StrategySpec::default()
        })
        .expect("qbeep spec");
    for name in ["hammer", "binomial", "neg-binomial", "uniform", "identity"] {
        session.add_strategy_by_name(name).expect("known strategy");
    }
    session.add_job(MitigationJob::new("golden", golden_counts()).with_lambda(1.7));
    session.run().expect("clean fixture run");
}

#[test]
fn prometheus_exposition_matches_golden_fixture() {
    let registry = MetricsRegistry::new();
    run_pinned_workload(&registry);
    let exposition = registry
        .snapshot()
        .without_timings()
        .without_families(&ENV_DEPENDENT)
        .to_prometheus();
    assert!(
        exposition.contains("qbeep_watchdog_degraded_total"),
        "the capped qbeep run must trip the watchdog:\n{exposition}"
    );

    let path = fixture_path();
    if std::env::var_os("QBEEP_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &exposition)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    assert_eq!(
        exposition,
        pinned,
        "Prometheus exposition drifted from {} (regen with \
         QBEEP_REGEN_GOLDEN=1 if intentional)",
        path.display()
    );
}

#[test]
fn exposition_is_reproducible_within_a_process() {
    // Two identical runs into two registries must render identically —
    // the exposition path itself carries no hidden per-process state.
    let render = || {
        let registry = MetricsRegistry::new();
        run_pinned_workload(&registry);
        registry
            .snapshot()
            .without_timings()
            .without_families(&ENV_DEPENDENT)
            .to_prometheus()
    };
    assert_eq!(render(), render());
}
