//! Semantic-preservation properties of the transpiler: lowering to the
//! native basis, peephole optimisation and SWAP routing must never
//! change a circuit's measurement distribution.

use proptest::prelude::*;
use qbeep::circuit::{Circuit, Gate};
use qbeep::device::profiles;
use qbeep::sim::ideal_distribution;
use qbeep::transpile::decompose::to_basis;
use qbeep::transpile::optimize::optimize;
use qbeep::transpile::Transpiler;

/// Strategy: one random gate application on an `n`-qubit circuit.
fn arb_gate(n: u32) -> impl Strategy<Value = (Gate, Vec<u32>)> {
    let angle = -3.0f64..3.0;
    prop_oneof![
        (0..n).prop_map(|q| (Gate::H, vec![q])),
        (0..n).prop_map(|q| (Gate::X, vec![q])),
        (0..n).prop_map(|q| (Gate::Y, vec![q])),
        (0..n).prop_map(|q| (Gate::S, vec![q])),
        (0..n).prop_map(|q| (Gate::T, vec![q])),
        (0..n).prop_map(|q| (Gate::SX, vec![q])),
        (angle.clone(), 0..n).prop_map(|(t, q)| (Gate::RX(t), vec![q])),
        (angle.clone(), 0..n).prop_map(|(t, q)| (Gate::RY(t), vec![q])),
        (angle.clone(), 0..n).prop_map(|(t, q)| (Gate::RZ(t), vec![q])),
        distinct_pair(n).prop_map(|(a, b)| (Gate::CX, vec![a, b])),
        distinct_pair(n).prop_map(|(a, b)| (Gate::CZ, vec![a, b])),
        (angle.clone(), distinct_pair(n)).prop_map(|(t, (a, b))| (Gate::CP(t), vec![a, b])),
        (angle.clone(), distinct_pair(n)).prop_map(|(t, (a, b))| (Gate::RZZ(t), vec![a, b])),
        (angle, distinct_pair(n)).prop_map(|(t, (a, b))| (Gate::RXX(t), vec![a, b])),
        distinct_pair(n).prop_map(|(a, b)| (Gate::SWAP, vec![a, b])),
        distinct_triple(n).prop_map(|(a, b, c)| (Gate::CCX, vec![a, b, c])),
    ]
}

fn distinct_pair(n: u32) -> impl Strategy<Value = (u32, u32)> {
    (0..n, 0..n - 1).prop_map(move |(a, b_raw)| {
        let b = if b_raw >= a { b_raw + 1 } else { b_raw };
        (a, b)
    })
}

fn distinct_triple(n: u32) -> impl Strategy<Value = (u32, u32, u32)> {
    (0..n, 0..n - 1, 0..n - 2).prop_map(move |(a, b_raw, c_raw)| {
        let b = if b_raw >= a { b_raw + 1 } else { b_raw };
        let mut c = c_raw;
        for taken in [a.min(b), a.max(b)] {
            if c >= taken {
                c += 1;
            }
        }
        (a, b, c)
    })
}

/// Strategy: a random 4-qubit circuit of up to 14 gates.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(4), 1..14).prop_map(|gates| {
        let mut c = Circuit::new(4, "random");
        for (g, qs) in gates {
            c.apply(g, &qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_preserves_distribution(circuit in arb_circuit()) {
        let ideal = ideal_distribution(&circuit);
        let lowered = to_basis(&circuit);
        prop_assert!(lowered.is_basis_only());
        let low = ideal_distribution(&lowered);
        prop_assert!(ideal.hellinger(&low) < 1e-6);
    }

    #[test]
    fn optimisation_preserves_distribution(circuit in arb_circuit()) {
        let lowered = to_basis(&circuit);
        let ideal = ideal_distribution(&lowered);
        let optimised = optimize(&lowered);
        prop_assert!(optimised.gate_count() <= lowered.gate_count());
        let opt = ideal_distribution(&optimised);
        prop_assert!(ideal.hellinger(&opt) < 1e-6);
    }

    #[test]
    fn full_transpilation_preserves_distribution(circuit in arb_circuit()) {
        // Route onto a 5-qubit T-shaped machine (forces real SWAPs) and
        // compare the physical circuit's distribution over the measured
        // qubits with the logical one.
        let backend = profiles::by_name("fake_lima").unwrap();
        let ideal = ideal_distribution(&circuit);
        let t = Transpiler::new(&backend).transpile(&circuit).unwrap();
        let physical = ideal_distribution(t.circuit());
        prop_assert!(
            ideal.hellinger(&physical) < 1e-6,
            "hellinger {}",
            ideal.hellinger(&physical)
        );
    }
}
