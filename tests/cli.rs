//! End-to-end tests of the `qbeep-cli` binary: the vendor-facing
//! transpile → run → mitigate loop over files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qbeep-cli"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qbeep-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

const BV_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// circuit: bv_cli_test
qreg q[4];
creg c[3];
x q[3]; h q[3];
h q[0]; h q[1]; h q[2];
cx q[0],q[3]; cx q[2],q[3];
h q[0]; h q[1]; h q[2];
h q[3]; x q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;

#[test]
fn backends_lists_the_fleet() {
    let out = cli().arg("backends").output().expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fake_lima"));
    assert!(text.contains("fake_washington"));
    assert!(text.contains("fake_sycamore"));
}

#[test]
fn transpile_emits_qasm_with_stats() {
    let qasm = write_temp("t.qasm", BV_QASM);
    let out = cli()
        .args(["transpile", "--qasm", qasm.to_str().unwrap(), "--backend", "fake_lima"])
        .output()
        .expect("run cli");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OPENQASM 2.0;"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("λ ="), "missing λ line: {stderr}");
}

#[test]
fn run_then_mitigate_round_trips() {
    let qasm = write_temp("rt.qasm", BV_QASM);
    let run = cli()
        .args([
            "run",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lagos",
            "--shots",
            "2000",
            "--seed",
            "9",
        ])
        .output()
        .expect("run cli");
    assert!(run.status.success(), "{}", String::from_utf8_lossy(&run.stderr));
    let counts_path = write_temp("rt_counts.json", &String::from_utf8_lossy(&run.stdout));

    let mitigated = cli()
        .args([
            "mitigate",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lagos",
            "--counts",
            counts_path.to_str().unwrap(),
        ])
        .output()
        .expect("run cli");
    assert!(mitigated.status.success(), "{}", String::from_utf8_lossy(&mitigated.stderr));
    let json: std::collections::BTreeMap<String, f64> =
        serde_json::from_slice(&mitigated.stdout).expect("mitigated output is JSON");
    // The secret of BV_QASM is 101 (CX from q0 and q2).
    let top = json
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(k, _)| k.clone())
        .expect("non-empty output");
    assert_eq!(top, "101");
    let total: f64 = json.values().sum();
    assert!((total - 1.0).abs() < 1e-3, "probabilities sum to {total}");
}

#[test]
fn mitigate_with_explicit_lambda_needs_no_backend() {
    let counts = write_temp("lam_counts.json", r#"{"000": 700, "001": 150, "010": 150}"#);
    let out = cli()
        .args(["mitigate", "--counts", counts.to_str().unwrap(), "--lambda", "0.7"])
        .output()
        .expect("run cli");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json: std::collections::BTreeMap<String, f64> =
        serde_json::from_slice(&out.stdout).expect("JSON");
    assert!(json["000"] > 0.7);
}

#[test]
fn unknown_backend_fails_cleanly() {
    let counts = write_temp("bad_counts.json", r#"{"00": 10}"#);
    let out = cli()
        .args(["mitigate", "--counts", counts.to_str().unwrap(), "--backend", "nonsense"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));
}

#[test]
fn malformed_counts_fail_cleanly() {
    let counts = write_temp("mixed_counts.json", r#"{"00": 10, "000": 5}"#);
    let out = cli()
        .args(["mitigate", "--counts", counts.to_str().unwrap(), "--lambda", "0.5"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mixed widths"));
}
