//! End-to-end tests of the `qbeep-cli` binary: the vendor-facing
//! transpile → run → mitigate loop over files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qbeep-cli"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qbeep-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

const BV_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// circuit: bv_cli_test
qreg q[4];
creg c[3];
x q[3]; h q[3];
h q[0]; h q[1]; h q[2];
cx q[0],q[3]; cx q[2],q[3];
h q[0]; h q[1]; h q[2];
h q[3]; x q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;

#[test]
fn backends_lists_the_fleet() {
    let out = cli().arg("backends").output().expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fake_lima"));
    assert!(text.contains("fake_washington"));
    assert!(text.contains("fake_sycamore"));
}

#[test]
fn transpile_emits_qasm_with_stats() {
    let qasm = write_temp("t.qasm", BV_QASM);
    let out = cli()
        .args([
            "transpile",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lima",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OPENQASM 2.0;"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("λ ="), "missing λ line: {stderr}");
}

#[test]
fn run_then_mitigate_round_trips() {
    let qasm = write_temp("rt.qasm", BV_QASM);
    let run = cli()
        .args([
            "run",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lagos",
            "--shots",
            "2000",
            "--seed",
            "9",
        ])
        .output()
        .expect("run cli");
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let counts_path = write_temp("rt_counts.json", &String::from_utf8_lossy(&run.stdout));

    let mitigated = cli()
        .args([
            "mitigate",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lagos",
            "--counts",
            counts_path.to_str().unwrap(),
        ])
        .output()
        .expect("run cli");
    assert!(
        mitigated.status.success(),
        "{}",
        String::from_utf8_lossy(&mitigated.stderr)
    );
    let json: std::collections::BTreeMap<String, f64> =
        serde_json::from_slice(&mitigated.stdout).expect("mitigated output is JSON");
    // The secret of BV_QASM is 101 (CX from q0 and q2).
    let top = json
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(k, _)| k.clone())
        .expect("non-empty output");
    assert_eq!(top, "101");
    let total: f64 = json.values().sum();
    assert!((total - 1.0).abs() < 1e-3, "probabilities sum to {total}");
}

#[test]
fn mitigate_with_explicit_lambda_needs_no_backend() {
    let counts = write_temp("lam_counts.json", r#"{"000": 700, "001": 150, "010": 150}"#);
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.7",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: std::collections::BTreeMap<String, f64> =
        serde_json::from_slice(&out.stdout).expect("JSON");
    assert!(json["000"] > 0.7);
}

#[test]
fn help_exits_zero_with_full_usage() {
    for args in [vec!["help"], vec!["--help"], vec!["run", "--help"]] {
        let out = cli().args(&args).output().expect("run cli");
        assert!(out.status.success(), "{args:?} exited non-zero");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains("--telemetry"),
            "{args:?} usage lacks --telemetry: {text}"
        );
        for command in ["backends", "transpile", "run", "mitigate"] {
            assert!(text.contains(command), "{args:?} usage lacks {command}");
        }
    }
}

/// Extracts the run-report JSON from stderr: every other stderr line
/// starts with `//`, so the report begins at the first line-start `{`.
fn report_json(stderr: &str) -> serde_json::Value {
    let start = if stderr.starts_with('{') {
        0
    } else {
        stderr
            .find("\n{")
            .map(|i| i + 1)
            .expect("report JSON on stderr")
    };
    serde_json::from_str(&stderr[start..]).expect("valid report JSON")
}

#[test]
fn run_with_telemetry_json_reports_the_full_pipeline() {
    let qasm = write_temp("telem.qasm", BV_QASM);
    let out = cli()
        .args([
            "run",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lagos",
            "--shots",
            "2000",
            "--telemetry",
            "json",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout still carries the plain counts JSON.
    let counts: std::collections::BTreeMap<String, u64> =
        serde_json::from_slice(&out.stdout).expect("counts JSON on stdout");
    assert_eq!(counts.values().sum::<u64>(), 2000);

    let stderr = String::from_utf8_lossy(&out.stderr);
    let report = report_json(&stderr);
    let gauges = report["gauges"].as_object().expect("gauges object");
    for key in [
        "lambda.t1_term",
        "lambda.t2_term",
        "lambda.gate_term",
        "lambda.readout_term",
    ] {
        assert!(gauges.contains_key(key), "missing Eq.-2 gauge {key}");
    }
    let counters = report["counters"].as_object().expect("counters object");
    for key in [
        "graph.vertices",
        "graph.edges",
        "graph.pruned_pairs",
        "execute.shots",
    ] {
        assert!(counters.contains_key(key), "missing counter {key}");
    }
    let mass = report["series"]["mitigate.mass_moved"]
        .as_array()
        .expect("mass series");
    assert_eq!(mass.len(), 20, "one mass-moved sample per iteration");
    let paths: Vec<&str> = report["spans"]
        .as_array()
        .expect("spans array")
        .iter()
        .map(|s| s["path"].as_str().expect("span path"))
        .collect();
    for path in [
        "transpile",
        "simulate",
        "mitigate/graph_build",
        "mitigate/graph_iterate",
    ] {
        assert!(paths.contains(&path), "missing span {path} in {paths:?}");
    }
}

#[test]
fn telemetry_table_flag_env_var_and_override() {
    let counts = write_temp(
        "telem_counts.json",
        r#"{"000": 700, "001": 150, "010": 150}"#,
    );
    // Valueless --telemetry → human-readable table on stderr.
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.7",
            "--telemetry",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("=== spans ==="),
        "no table on stderr: {stderr}"
    );
    assert!(
        stderr.contains("mitigate/graph_iterate"),
        "table lacks spans: {stderr}"
    );

    // The flag overrides the environment variable.
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.7",
            "--telemetry=off",
        ])
        .env("QBEEP_TELEMETRY", "json")
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains('{'),
        "--telemetry=off should silence the env var: {stderr}"
    );

    // The env var alone enables the report.
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.7",
        ])
        .env("QBEEP_TELEMETRY", "json")
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = report_json(&String::from_utf8_lossy(&out.stderr));
    assert_eq!(report["counters"]["graph.vertices"].as_u64(), Some(3));
}

#[test]
fn bad_telemetry_format_fails_cleanly() {
    let counts = write_temp("fmt_counts.json", r#"{"00": 10}"#);
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.5",
            "--telemetry=xml",
        ])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad telemetry format"));
    assert!(
        stderr.contains("--help"),
        "error should point at --help: {stderr}"
    );
}

#[test]
fn unknown_flag_fails_with_help_hint() {
    let counts = write_temp("uk_counts.json", r#"{"00": 10}"#);
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.5",
            "--frobnicate",
            "7",
        ])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag --frobnicate"),
        "missing flag name: {stderr}"
    );
    assert!(
        stderr.contains("--help"),
        "error should point at --help: {stderr}"
    );
    // A flag valid for another command is still rejected here.
    let out = cli()
        .args(["backends", "--shots", "100"])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --shots"));
}

#[test]
fn telemetry_json_report_deserializes_and_carries_provenance() {
    let qasm = write_temp("prov.qasm", BV_QASM);
    let out = cli()
        .args([
            "run",
            "--qasm",
            qasm.to_str().unwrap(),
            "--backend",
            "fake_lagos",
            "--shots",
            "1000",
            "--seed",
            "42",
            "--telemetry",
            "json",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let value = report_json(&String::from_utf8_lossy(&out.stderr));
    // The stderr JSON deserializes into the library's RunReport type.
    let report: qbeep::telemetry::RunReport =
        serde_json::from_value(value).expect("stderr deserializes into RunReport");
    let manifest = report.manifest.expect("report carries a manifest");
    assert_eq!(manifest.config_digest.len(), 16);
    assert_eq!(
        manifest.calibration_digest.as_ref().map(String::len),
        Some(16)
    );
    assert_eq!(manifest.backend.as_deref(), Some("fake_lagos"));
    assert_eq!(manifest.seed, Some(42));
    let circuit = manifest
        .circuit
        .as_ref()
        .expect("manifest fingerprints the circuit");
    assert_eq!(circuit.measured, 3);
    assert!(circuit.gates > 0);
    // And it round-trips through serde.
    let json = serde_json::to_string(&manifest).unwrap();
    let back: qbeep::telemetry::ProvenanceManifest = serde_json::from_str(&json).unwrap();
    assert_eq!(back, manifest);
}

#[test]
fn trace_flag_writes_chrome_trace_with_nested_spans() {
    let counts = write_temp(
        "trace_counts.json",
        r#"{"000": 700, "001": 150, "010": 150}"#,
    );
    let trace_path = std::env::temp_dir()
        .join("qbeep-cli-tests")
        .join(format!("trace-{}.json", std::process::id()));
    // --trace alone enables recording; no --telemetry needed.
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.7",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap())
            .expect("trace file is valid JSON");
    let events = trace.as_array().expect("Chrome trace is a JSON array");
    assert!(!events.is_empty());
    let span = |name: &str| {
        events
            .iter()
            .find(|e| e["name"] == name && e["ph"] == "X")
            .unwrap_or_else(|| panic!("no complete event named {name}"))
    };
    let outer = span("mitigate");
    let build = span("mitigate/graph_build");
    let iterate = span("mitigate/graph_iterate");
    for e in [outer, build, iterate] {
        assert!(e["ts"].as_f64().is_some(), "ts must be a number: {e}");
        assert!(e["dur"].as_f64().is_some(), "dur must be a number: {e}");
        assert!(e["pid"].is_number() && e["tid"].is_number());
    }
    // Nesting: both stages start and end inside the mitigate span
    // (1 µs tolerance for timestamp rounding).
    let bounds = |e: &serde_json::Value| {
        let ts = e["ts"].as_f64().unwrap();
        (ts, ts + e["dur"].as_f64().unwrap())
    };
    let (outer_start, outer_end) = bounds(outer);
    for stage in [build, iterate] {
        let (start, end) = bounds(stage);
        assert!(start >= outer_start - 1.0, "{stage} starts before mitigate");
        assert!(end <= outer_end + 1.0, "{stage} ends after mitigate");
    }
    std::fs::remove_file(&trace_path).unwrap();
}

#[test]
fn events_flag_streams_jsonl_on_stderr() {
    let counts = write_temp(
        "events_counts.json",
        r#"{"000": 700, "001": 150, "010": 150}"#,
    );
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.7",
            "--events",
        ])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let mut names = Vec::new();
    for line in stderr.lines().filter(|l| l.starts_with('{')) {
        let event: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e}"));
        assert!(
            event["start_us"].is_number(),
            "event lacks start_us: {event}"
        );
        assert!(event["level"].is_string(), "event lacks level: {event}");
        names.push(event["name"].as_str().expect("name").to_string());
    }
    for expected in ["mitigate.complete", "mitigate/graph_iterate", "mitigate"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing event {expected} in {names:?}"
        );
    }
}

#[test]
fn unknown_backend_fails_cleanly() {
    let counts = write_temp("bad_counts.json", r#"{"00": 10}"#);
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--backend",
            "nonsense",
        ])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));
}

#[test]
fn malformed_counts_fail_cleanly() {
    let counts = write_temp("mixed_counts.json", r#"{"00": 10, "000": 5}"#);
    let out = cli()
        .args([
            "mitigate",
            "--counts",
            counts.to_str().unwrap(),
            "--lambda",
            "0.5",
        ])
        .output()
        .expect("run cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mixed widths"));
}

#[test]
fn inspect_reports_missing_flight_dir_without_failing() {
    let missing = std::env::temp_dir().join("qbeep-cli-tests-no-such-flight-dir");
    let _ = std::fs::remove_dir_all(&missing);
    let out = cli()
        .args(["inspect", "--flight", missing.to_str().unwrap()])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "missing flight dir must not fail inspect: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("no flight recordings found"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn inspect_reports_empty_flight_dir_without_failing() {
    let empty = std::env::temp_dir().join("qbeep-cli-tests-empty-flight-dir");
    std::fs::create_dir_all(&empty).expect("temp dir");
    let out = cli()
        .args(["inspect", "--flight", empty.to_str().unwrap()])
        .output()
        .expect("run cli");
    assert!(
        out.status.success(),
        "empty flight dir must not fail inspect: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("no flight recordings found"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn introspect_flag_profiles_without_perturbing_output() {
    let counts = write_temp(
        "introspect_counts.json",
        r#"{"000": 700, "001": 80, "010": 60, "100": 90, "111": 70}"#,
    );
    let base_args = [
        "mitigate",
        "--counts",
        counts.to_str().unwrap(),
        "--lambda",
        "0.8",
    ];

    let bare = cli().args(base_args).output().expect("run cli");
    assert!(
        bare.status.success(),
        "{}",
        String::from_utf8_lossy(&bare.stderr)
    );

    let introspected = cli()
        .args(base_args)
        .args(["--telemetry=json", "--introspect", "127.0.0.1:0"])
        .output()
        .expect("run cli");
    assert!(
        introspected.status.success(),
        "{}",
        String::from_utf8_lossy(&introspected.stderr)
    );
    // Bit-for-bit parity: the profiled, server-carrying run prints the
    // exact same mitigated distribution.
    assert_eq!(
        String::from_utf8_lossy(&bare.stdout),
        String::from_utf8_lossy(&introspected.stdout),
        "--introspect changed the mitigation output"
    );
    let stderr = String::from_utf8_lossy(&introspected.stderr);
    assert!(
        stderr.contains("introspect: listening on http://127.0.0.1:"),
        "missing listen line: {stderr}"
    );
    // The run report now carries the continuous-profiling section.
    let json_start = stderr.find('{').expect("report JSON on stderr");
    let json_end = stderr.rfind('}').expect("report JSON on stderr");
    let report: serde_json::Value =
        serde_json::from_str(&stderr[json_start..=json_end]).expect("report parses");
    let profile = &report["profile"];
    assert!(
        profile.is_object(),
        "report lacks a profile section: {report}"
    );
    assert!(profile["total_wall_ms"].as_f64().expect("total wall") > 0.0);
    assert!(
        profile["stages"].as_array().is_some_and(|s| !s.is_empty()),
        "profile has no stages: {profile}"
    );
}
