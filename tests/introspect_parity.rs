//! Introspection-parity test: arming the continuous profiler and the
//! live introspection plane must not perturb mitigation results. The
//! binary installs the counting allocator — exactly what `qbeep-cli`
//! and `qbeep-bench` ship — runs the same workload bare and fully
//! instrumented (profiler on, RSS sampler running, HTTP server being
//! scraped mid-run), and requires bit-identical distributions.

use std::io::{Read, Write};
use std::net::TcpStream;

use qbeep::bitstring::{Counts, Distribution};
use qbeep::core::{MitigationJob, MitigationSession};
use qbeep::sim::{EmpiricalChannel, EmpiricalConfig};
use qbeep::telemetry::{
    set_profiling, CountingAlloc, FlightRecorder, IntrospectServer, IntrospectSources,
    MetricsRegistry, Recorder, RssSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn workload_counts() -> Counts {
    let target = "10110100101101".parse().expect("valid bitstring");
    let channel =
        EmpiricalChannel::new(Distribution::point(target), 2.2, EmpiricalConfig::default());
    let mut rng = StdRng::seed_from_u64(41);
    channel.run(1200, &mut rng)
}

fn mitigate(counts: Counts, recorder: Option<Recorder>) -> Distribution {
    let mut session = MitigationSession::new();
    if let Some(recorder) = recorder {
        session = session.with_recorder(recorder);
    }
    session.add_strategy_by_name("qbeep").expect("known");
    session.add_job(MitigationJob::new("parity", counts).with_lambda(2.0));
    let report = session.run().expect("clean run");
    report
        .outcome("parity", "qbeep")
        .expect("qbeep ran")
        .mitigated
        .clone()
}

/// One raw HTTP GET against the live plane, for mid-run pressure.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: parity\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
}

#[test]
fn introspection_does_not_perturb_mitigation_results() {
    let counts = workload_counts();

    // Reference: no recorder, profiler off.
    let bare = mitigate(counts.clone(), None);

    // Instrumented: metrics registry, recorder, profiler armed, RSS
    // sampler running, live server scraped between jobs.
    let registry = MetricsRegistry::new();
    qbeep::core::describe_metric_families(&registry);
    let flight = FlightRecorder::new();
    let recorder = Recorder::new()
        .with_metrics(registry.clone())
        .with_flight(flight.clone());
    qbeep::telemetry::reset_profile();
    set_profiling(true);
    let sampler = RssSampler::start(std::time::Duration::from_millis(20));
    let server = IntrospectServer::start(
        "127.0.0.1:0",
        IntrospectSources {
            metrics: registry,
            flight,
            recorder: recorder.clone(),
            rss: Some(sampler.handle()),
        },
    )
    .expect("bind introspection server");
    let addr = server.local_addr();

    let first = mitigate(counts.clone(), Some(recorder.clone()));
    // Scrape every endpoint mid-session, then mitigate again: the
    // serving thread must not disturb the numerics.
    for path in ["/healthz", "/metrics", "/profile", "/flights"] {
        let response = scrape(addr, path);
        assert!(response.starts_with("HTTP/1.1 200"), "{path}: {response}");
    }
    let second = mitigate(counts, Some(recorder));
    set_profiling(false);

    assert_eq!(
        bare, first,
        "instrumented run diverged from the bare run — introspection broke determinism"
    );
    assert_eq!(
        bare, second,
        "post-scrape run diverged from the bare run — introspection broke determinism"
    );
}
