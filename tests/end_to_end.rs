//! Cross-crate integration tests: the full
//! circuit → transpile → noisy-execute → mitigate pipeline.

use qbeep::bitstring::{BitString, Counts, Distribution};
use qbeep::circuit::library;
use qbeep::core::hammer::{hammer_mitigate, HammerConfig};
use qbeep::core::{QBeep, QBeepConfig};
use qbeep::device::profiles;
use qbeep::sim::{execute_on_device, ideal_distribution, EmpiricalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bs(s: &str) -> BitString {
    s.parse().unwrap()
}

#[test]
fn bv_pipeline_improves_pst_on_every_good_machine() {
    let secret = bs("10110");
    let circuit = library::bernstein_vazirani(&secret);
    let engine = QBeep::default();
    for name in ["fake_lagos", "fake_oslo", "fake_jakarta"] {
        let backend = profiles::by_name(name).unwrap();
        let mut rng = StdRng::seed_from_u64(101);
        let run = execute_on_device(
            &circuit,
            &backend,
            4000,
            &EmpiricalConfig::default(),
            &mut rng,
        )
        .unwrap();
        let result = engine.mitigate_run(&run.counts, &run.transpiled, &backend);
        assert!(
            result.mitigated.prob(&secret) > run.counts.pst(&secret),
            "{name}: {} -> {}",
            run.counts.pst(&secret),
            result.mitigated.prob(&secret)
        );
    }
}

#[test]
fn qbeep_beats_hammer_on_deep_circuits() {
    // The paper's core comparative claim, strongest where errors
    // cluster at a distance (wide/deep circuits).
    let engine = QBeep::default();
    let hammer_cfg = HammerConfig::default();
    let mut qbeep_wins = 0;
    let mut total = 0;
    let mut rng = StdRng::seed_from_u64(55);
    for (width, machine) in [
        (9, "fake_guadalupe"),
        (11, "fake_toronto"),
        (12, "fake_brooklyn"),
        (13, "fake_washington"),
    ] {
        let secret = BitString::from_bits((0..width).map(|i| i % 2 == 0));
        let circuit = library::bernstein_vazirani(&secret);
        let backend = profiles::by_name(machine).unwrap();
        let run = execute_on_device(
            &circuit,
            &backend,
            3000,
            &EmpiricalConfig::default(),
            &mut rng,
        )
        .unwrap();
        let ideal = Distribution::point(secret);
        let q = engine
            .mitigate_run(&run.counts, &run.transpiled, &backend)
            .mitigated
            .fidelity(&ideal);
        let h = hammer_mitigate(&run.counts, &hammer_cfg).fidelity(&ideal);
        total += 1;
        if q >= h {
            qbeep_wins += 1;
        }
    }
    assert!(
        qbeep_wins * 2 > total,
        "Q-BEEP won only {qbeep_wins}/{total}"
    );
}

#[test]
fn ghz_multi_outcome_mitigation_preserves_both_peaks() {
    // Mitigation must not collapse legitimately multi-modal outputs.
    let circuit = library::cat_state(4);
    let backend = profiles::by_name("fake_lima").unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let run = execute_on_device(
        &circuit,
        &backend,
        4000,
        &EmpiricalConfig::default(),
        &mut rng,
    )
    .unwrap();
    let result = QBeep::default().mitigate_run(&run.counts, &run.transpiled, &backend);
    let p0 = result.mitigated.prob(&bs("0000"));
    let p1 = result.mitigated.prob(&bs("1111"));
    assert!(p0 > 0.25 && p1 > 0.25, "peaks {p0} / {p1}");
    assert!(
        result.mitigated.fidelity(&run.ideal)
            >= run.counts.to_distribution().fidelity(&run.ideal) - 1e-9
    );
}

#[test]
fn uniform_output_is_left_nearly_untouched() {
    // §4.3: no structure to exploit on max-entropy algorithms.
    let circuit = library::qrng(4);
    let backend = profiles::by_name("fake_mumbai").unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let run = execute_on_device(
        &circuit,
        &backend,
        6000,
        &EmpiricalConfig::default(),
        &mut rng,
    )
    .unwrap();
    let result = QBeep::default().mitigate_run(&run.counts, &run.transpiled, &backend);
    let tvd = result
        .mitigated
        .total_variation(&run.counts.to_distribution());
    assert!(tvd < 0.1, "uniform output distorted by {tvd}");
}

#[test]
fn grover_and_qpe_survive_the_full_pipeline() {
    // 3-qubit Grover-2 and QPE transpile to ~1.5–2 units of λ on the
    // standard profiles, which on a 3-bit register approaches the
    // maximally-mixed regime Q-BEEP cannot help with (§3.5). Run them
    // on a well-calibrated day instead (λ scaled down), which is the
    // regime these algorithms were actually demonstrated in.
    let good_day = EmpiricalConfig {
        lambda_scale: 0.4,
        ..EmpiricalConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(13);
    let engine = QBeep::default();
    let backend = profiles::by_name("fake_lagos").unwrap();

    let marked = bs("110");
    let grover = library::grover(&marked, 2);
    let run = execute_on_device(&grover, &backend, 3000, &good_day, &mut rng).unwrap();
    let result = engine.mitigate_run(&run.counts, &run.transpiled, &backend);
    assert_eq!(result.mitigated.mode(), marked);

    let qpe = library::qpe(3, 0.375);
    let run = execute_on_device(&qpe, &backend, 3000, &good_day, &mut rng).unwrap();
    let result = engine.mitigate_run(&run.counts, &run.transpiled, &backend);
    assert_eq!(result.mitigated.mode(), bs("011")); // 0.375 · 8 = 3
}

#[test]
fn lambda_estimate_tracks_ground_truth_within_jitter() {
    let circuit = library::bernstein_vazirani(&bs("110101"));
    let backend = profiles::by_name("fake_toronto").unwrap();
    let mut rng = StdRng::seed_from_u64(19);
    let run = execute_on_device(
        &circuit,
        &backend,
        100,
        &EmpiricalConfig::default(),
        &mut rng,
    )
    .unwrap();
    let est = qbeep::core::lambda::estimate_lambda(&run.transpiled, &backend);
    // The channel's λ* is est × LogNormal(0.25); the ratio stays within
    // a few σ.
    let ratio = run.lambda_true / est;
    assert!((0.3..=3.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn iteration_trace_is_stable_and_converging() {
    let circuit = library::bernstein_vazirani(&bs("1011011"));
    let backend = profiles::by_name("fake_guadalupe").unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let run = execute_on_device(
        &circuit,
        &backend,
        3000,
        &EmpiricalConfig::default(),
        &mut rng,
    )
    .unwrap();
    let result = QBeep::default().mitigate_tracked(&run.counts, 1.0);
    let ideal = Distribution::point(bs("1011011"));
    let fids: Vec<f64> = result.trace.iter().map(|d| d.fidelity(&ideal)).collect();
    // Late-iteration movement must be smaller than early movement
    // (1/n damping), and the final value must not collapse.
    let early = (fids[1] - fids[0]).abs();
    let late = (fids[19] - fids[18]).abs();
    assert!(late <= early + 1e-9, "early {early}, late {late}");
    assert!(fids[19] > 0.0);
}

#[test]
fn diagnostics_report_iterations_and_conserve_mass_on_fig5_counts() {
    // The paper's Fig. 5 walkthrough: a dominant node with satellite
    // single-bit errors.
    let counts = Counts::from_pairs(
        4,
        vec![
            (bs("0000"), 600),
            (bs("0001"), 100),
            (bs("0010"), 100),
            (bs("0100"), 100),
            (bs("1000"), 100),
        ],
    );
    let result = QBeep::default().mitigate_with_lambda(&counts, 0.8);
    let d = &result.diagnostics;
    assert_eq!(d.iterations, QBeepConfig::default().iterations);
    assert_eq!(d.mass_moved.len(), d.iterations);
    assert_eq!(d.max_node_delta.len(), d.iterations);
    assert_eq!(d.vertices, 5);
    assert!(d.edges > 0);
    // Algorithm 1 conserves the observation mass exactly.
    assert!(
        (d.total_count - 1000.0).abs() < 1e-6,
        "mass drifted to {}",
        d.total_count
    );
    // The 1/n damping must not let late iterations move more than the
    // first one.
    assert!(d.mass_moved[d.iterations - 1] <= d.mass_moved[0] + 1e-9);
}

#[test]
fn whole_suite_round_trips_on_every_machine_cheaply() {
    // One shot-light pass of all 14 suite circuits × 4 machines: the
    // pipeline must hold up structurally everywhere.
    let engine = QBeep::new(QBeepConfig {
        iterations: 5,
        ..QBeepConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(3);
    for name in [
        "fake_lima",
        "fake_jakarta",
        "fake_guadalupe",
        "fake_washington",
    ] {
        let backend = profiles::by_name(name).unwrap();
        for entry in library::qasmbench_suite() {
            let ideal = ideal_distribution(entry.circuit());
            let run = execute_on_device(
                entry.circuit(),
                &backend,
                400,
                &EmpiricalConfig::default(),
                &mut rng,
            )
            .unwrap();
            let result = engine.mitigate_run(&run.counts, &run.transpiled, &backend);
            let fid = result.mitigated.fidelity(&ideal);
            assert!(
                (0.0..=1.0 + 1e-9).contains(&fid),
                "{} on {name}: fidelity {fid}",
                entry.label()
            );
        }
    }
}
