//! Explores the synthetic device fleet: topology and calibration
//! summaries for every machine, plus a transpilation walkthrough
//! showing layout, routing overhead, scheduling and the λ breakdown
//! for one circuit on machines of increasing size.
//!
//! ```text
//! cargo run --release --example device_explorer
//! ```

use qbeep::circuit::library::bernstein_vazirani;
use qbeep::core::lambda::lambda_breakdown;
use qbeep::device::profiles;
use qbeep::transpile::Transpiler;

fn main() {
    println!(
        "{:>18} {:>7} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "machine", "qubits", "edges", "T1(µs)", "T2(µs)", "readout", "cx_err"
    );
    let mut fleet = profiles::ibmq_fleet();
    fleet.push(profiles::ionq());
    fleet.push(profiles::sycamore());
    for b in &fleet {
        let c = b.calibration();
        println!(
            "{:>18} {:>7} {:>7} {:>9.1} {:>9.1} {:>9.4} {:>10.5}",
            b.name(),
            b.num_qubits(),
            b.topology().num_edges(),
            c.mean_t1_us(),
            c.mean_t2_us(),
            c.mean_readout_error(),
            c.mean_cx_error().unwrap_or(f64::NAN),
        );
    }

    // Transpilation walkthrough: the same 8-qubit BV on three machines.
    let secret = "10110101".parse().expect("valid");
    let circuit = bernstein_vazirani(&secret);
    println!(
        "\ntranspiling {} ({} gates) onto machines of increasing size:",
        circuit.name(),
        circuit.gate_count()
    );
    println!(
        "{:>18} {:>7} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "machine", "gates", "cx", "t(µs)", "λ_T1", "λ_T2", "λ_gate", "λ_ro", "λ"
    );
    for name in ["fake_guadalupe", "fake_toronto", "fake_washington"] {
        let backend = profiles::by_name(name).expect("profile exists");
        let t = Transpiler::new(&backend).transpile(&circuit).expect("fits");
        let b = lambda_breakdown(&t, &backend);
        println!(
            "{:>18} {:>7} {:>7} {:>10.2} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            t.gate_count(),
            t.cx_count(),
            t.duration_ns() / 1000.0,
            b.t1_term,
            b.t2_term,
            b.gate_term,
            b.readout_term,
            b.total(),
        );
    }
}
