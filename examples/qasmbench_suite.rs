//! Runs the 14-circuit QASMBench-style suite on one machine, showing
//! per-algorithm fidelity before/after Q-BEEP next to each
//! algorithm's ideal output entropy — the entropy/gain relationship of
//! the paper's Fig. 11.
//!
//! ```text
//! cargo run --release --example qasmbench_suite [machine]
//! ```

use qbeep::circuit::library::qasmbench_suite;
use qbeep::core::QBeep;
use qbeep::device::profiles;
use qbeep::sim::{execute_on_device, ideal_distribution, EmpiricalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let machine = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fake_guadalupe".to_string());
    let Some(backend) = profiles::by_name(&machine) else {
        eprintln!(
            "unknown machine {machine}; known: {:?}",
            profiles::ibmq_names()
        );
        std::process::exit(1);
    };
    println!("backend: {backend}\n");

    let engine = QBeep::default();
    let mut rng = StdRng::seed_from_u64(5);
    println!(
        "{:>18} {:>8} {:>9} {:>9} {:>9}",
        "algorithm", "entropy", "fid_raw", "fid_qbeep", "rel"
    );
    for entry in qasmbench_suite() {
        let ideal = ideal_distribution(entry.circuit());
        let run = execute_on_device(
            entry.circuit(),
            &backend,
            3000,
            &EmpiricalConfig::default(),
            &mut rng,
        )
        .expect("suite fits every fleet machine");
        let result = engine.mitigate_run(&run.counts, &run.transpiled, &backend);
        let raw = run.counts.to_distribution().fidelity(&ideal);
        let mit = result.mitigated.fidelity(&ideal);
        println!(
            "{:>18} {:>8.3} {:>9.4} {:>9.4} {:>8.2}x",
            entry.label(),
            ideal.shannon_entropy(),
            raw,
            mit,
            mit / raw.max(1e-9)
        );
    }
}
