//! Bernstein–Vazirani mitigation sweep: widths 5–12 across four
//! machines of different size/quality, comparing raw, HAMMER and
//! Q-BEEP — a miniature of the paper's Fig. 7 evaluation.
//!
//! ```text
//! cargo run --release --example bv_mitigation
//! ```

use qbeep::bitstring::BitString;
use qbeep::circuit::library::bernstein_vazirani;
use qbeep::core::hammer::{hammer_mitigate, HammerConfig};
use qbeep::core::QBeep;
use qbeep::device::profiles;
use qbeep::sim::{execute_on_device, EmpiricalConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let machines = [
        "fake_lagos",
        "fake_guadalupe",
        "fake_toronto",
        "fake_washington",
    ];
    let engine = QBeep::default();
    let hammer_cfg = HammerConfig::default();
    let mut rng = StdRng::seed_from_u64(7);

    println!(
        "{:>6} {:>16} {:>9} {:>9} {:>9} {:>9}",
        "width", "machine", "pst_raw", "hammer", "qbeep", "rel_qbeep"
    );
    let mut improvements = Vec::new();
    for width in (5..=12).step_by(1) {
        // A random non-zero secret per width.
        let secret = loop {
            let s = BitString::from_bits((0..width).map(|_| rng.gen_bool(0.5)));
            if s.hamming_weight() > 0 {
                break s;
            }
        };
        let circuit = bernstein_vazirani(&secret);
        for name in machines {
            let backend = profiles::by_name(name).expect("profile exists");
            if backend.num_qubits() < width + 1 {
                continue;
            }
            let run = execute_on_device(
                &circuit,
                &backend,
                3000,
                &EmpiricalConfig::default(),
                &mut rng,
            )
            .expect("fits");
            let qbeep = engine.mitigate_run(&run.counts, &run.transpiled, &backend);
            let hammer = hammer_mitigate(&run.counts, &hammer_cfg);
            let raw = run.counts.pst(&secret);
            let rel = qbeep.mitigated.prob(&secret) / raw.max(1e-9);
            improvements.push(rel);
            println!(
                "{width:>6} {name:>16} {raw:>9.4} {:>9.4} {:>9.4} {rel:>8.2}x",
                hammer.prob(&secret),
                qbeep.mitigated.prob(&secret),
            );
        }
    }
    let mean = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!(
        "\nmean relative PST improvement: {mean:.2}x over {} runs",
        improvements.len()
    );
}
