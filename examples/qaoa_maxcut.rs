//! QAOA MaxCut on the Sycamore-style machine: solve a 10-node
//! 3-regular MaxCut instance, run it through the noisy channel, and
//! recover solution quality with Q-BEEP (the paper's §4.4 workflow).
//!
//! ```text
//! cargo run --release --example qaoa_maxcut
//! ```

use qbeep::core::QBeep;
use qbeep::device::profiles;
use qbeep::qaoa::cost::{cost_ratio, expected_cost};
use qbeep::qaoa::{qaoa_circuit, ProblemGraph};
use qbeep::sim::{execute_on_device, ideal_distribution, EmpiricalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let problem = ProblemGraph::three_regular(10, &mut rng);
    let (c_min, best) = problem.minimum_cost();
    println!(
        "problem: 10-node 3-regular MaxCut, {} edges, C_min = {c_min} at {best}",
        problem.edges().len()
    );

    // Depth-2 ansatz with the library's ramp schedule.
    let circuit = qaoa_circuit(&problem, &[0.35, 0.6], &[0.5, 0.17]);
    let ideal = ideal_distribution(&circuit);
    println!(
        "ideal CR (noise-free):    {:.4}",
        cost_ratio(&ideal, &problem)
    );

    let backend = profiles::sycamore();
    // The documented native-gate correction for the Sycamore profile.
    let scale = 0.25;
    let cfg = EmpiricalConfig {
        lambda_scale: scale,
        ..EmpiricalConfig::default()
    };
    let run = execute_on_device(&circuit, &backend, 4000, &cfg, &mut rng).expect("fits");
    let raw_dist = run.counts.to_distribution();
    println!(
        "raw noisy CR:             {:.4}",
        cost_ratio(&raw_dist, &problem)
    );
    println!(
        "raw noisy ⟨C⟩:            {:.4}",
        expected_cost(&raw_dist, &problem)
    );

    let lambda = qbeep::core::lambda::estimate_lambda(&run.transpiled, &backend) * scale;
    let result = QBeep::default().mitigate_with_lambda(&run.counts, lambda);
    println!(
        "Q-BEEP CR (λ = {lambda:.3}):  {:.4}",
        cost_ratio(&result.mitigated, &problem)
    );
    println!(
        "relative CR improvement:  {:.2}x",
        qbeep::qaoa::cost::cr_improvement(
            cost_ratio(&raw_dist, &problem),
            cost_ratio(&result.mitigated, &problem)
        )
    );
}
