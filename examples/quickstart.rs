//! Quickstart: run a Bernstein–Vazirani circuit on a noisy synthetic
//! IBMQ-class machine and clean the result up with Q-BEEP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qbeep::circuit::library::bernstein_vazirani;
use qbeep::core::QBeep;
use qbeep::device::profiles;
use qbeep::sim::{execute_on_device, EmpiricalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The hidden secret our BV oracle encodes.
    let secret = "10110".parse().expect("valid bit-string");
    let circuit = bernstein_vazirani(&secret);
    println!(
        "circuit: {} ({} gates)",
        circuit.name(),
        circuit.gate_count()
    );

    // A synthetic 7-qubit machine with realistic calibration data.
    let backend = profiles::by_name("fake_lagos").expect("profile exists");
    println!("backend: {backend}");

    // Execute 4000 shots through the empirical noise channel.
    let mut rng = StdRng::seed_from_u64(2023);
    let run = execute_on_device(
        &circuit,
        &backend,
        4000,
        &EmpiricalConfig::default(),
        &mut rng,
    )
    .expect("circuit fits the machine");
    println!(
        "transpiled: {} gates ({} CX), {:.1} µs end-to-end",
        run.transpiled.gate_count(),
        run.transpiled.cx_count(),
        run.transpiled.duration_ns() / 1000.0
    );

    // Mitigate offline — λ is estimated from circuit + calibration only.
    let result = QBeep::default().mitigate_run(&run.counts, &run.transpiled, &backend);
    println!(
        "state graph: {} vertices, {} edges, λ = {:.3}",
        result.graph_size.0, result.graph_size.1, result.lambda
    );

    let before = run.counts.pst(&secret);
    let after = result.mitigated.prob(&secret);
    let fid_before = run.counts.to_distribution().fidelity(&run.ideal);
    let fid_after = result.mitigated.fidelity(&run.ideal);
    println!(
        "PST:      {before:.4} -> {after:.4}  ({:.2}x)",
        after / before
    );
    println!(
        "fidelity: {fid_before:.4} -> {fid_after:.4}  ({:.2}x)",
        fid_after / fid_before
    );
}
